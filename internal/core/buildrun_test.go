package core

import (
	"testing"

	"repro/internal/graph"
)

// TestBuildSSSPMatchesSSSP: the split build/run seam must be
// observationally identical to the one-shot entry point.
func TestBuildSSSPMatchesSSSP(t *testing.T) {
	g := diamond()
	want := mustSSSP(g, 0, -1)

	sn := BuildSSSP(g)
	if sn.Neurons() != want.Neurons || sn.Synapses() != want.Synapses {
		t.Fatalf("compiled size %d/%d, want %d/%d",
			sn.Neurons(), sn.Synapses(), want.Neurons, want.Synapses)
	}
	got, err := sn.Run(0, -1)
	if err != nil {
		t.Fatal(err)
	}
	for v := range want.Dist {
		if got.Dist[v] != want.Dist[v] || got.Pred[v] != want.Pred[v] {
			t.Fatalf("vertex %d: dist/pred %d/%d, want %d/%d",
				v, got.Dist[v], got.Pred[v], want.Dist[v], want.Pred[v])
		}
	}
	if got.SpikeTime != want.SpikeTime || got.Stats != want.Stats {
		t.Fatalf("spike time/stats diverged: %d %+v vs %d %+v",
			got.SpikeTime, got.Stats, want.SpikeTime, want.Stats)
	}
}

// TestBuildSSSPSingleShot: the relays latch their first spike, so a
// second Run on the same compiled network must panic rather than return
// silently wrong distances.
func TestBuildSSSPSingleShot(t *testing.T) {
	sn := BuildSSSP(diamond())
	if _, err := sn.Run(0, -1); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("second Run did not panic")
		}
	}()
	sn.Run(0, -1)
}

// TestBuildSSSPRejectsZeroLengths: the delay-validity check lives at
// build time.
func TestBuildSSSPRejectsZeroLengths(t *testing.T) {
	g := graph.New(2)
	g.AddEdge(0, 1, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("BuildSSSP accepted a zero-length edge")
		}
	}()
	BuildSSSP(g)
}
