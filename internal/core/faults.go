package core

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// SSSPWithFaults runs the Section 3 spiking SSSP on hardware with dead
// synapses: each graph edge's synapse is independently disabled with
// probability dropProb (the fire-once self-loops, being local to a
// neuron, are assumed intact). It returns the result together with the
// surviving topology.
//
// The algorithm degrades soundly rather than silently corrupting: every
// first-spike time is still the exact shortest-path distance *in the
// surviving graph* (faults can only remove paths, never shorten them),
// which the tests verify against Dijkstra on the survivor. This is the
// failure-model counterpart of the paper's observation that the spiking
// wavefront computes distances of whatever network physically exists.
//
// This models permanent topology damage only. For transient per-delivery
// faults (spike loss, delay jitter, stuck neurons, voltage upsets) and
// the recovery harness around them, see internal/faults.
func SSSPWithFaults(g *graph.Graph, src int, dropProb float64, seed int64) (*SSSPResult, *graph.Graph) {
	if dropProb < 0 || dropProb > 1 {
		panic(fmt.Sprintf("core: drop probability %v outside [0,1]", dropProb))
	}
	rng := rand.New(rand.NewSource(seed))
	survived := graph.New(g.N())
	for _, e := range g.Edges() {
		if rng.Float64() >= dropProb {
			survived.AddEdge(e.From, e.To, e.Len)
		}
	}
	// dst = -1 on a fault-free simulator cannot time out.
	res, err := SSSP(survived, src, -1)
	if err != nil {
		panic(err)
	}
	return res, survived
}
