package metrics

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/perf"
)

func perfReport() *perf.Report {
	return &perf.Report{
		Schema: perf.Schema,
		Steps:  100, Spikes: 40, Deliveries: 2500, MaxQueueDepth: 17,
		DeliveriesPerStepMilli: 25000,
		WallMS:                 12.5, StepsPerSec: 8000, DeliveriesPerSec: 200000,
		Phases: []perf.PhaseReport{
			{Name: "build", WallMS: 3.5}, {Name: "run", WallMS: 8}, {Name: "report", WallMS: 1},
		},
		AllocObjects: 10, AllocBytes: 4096, GCCycles: 2, GCPauseNS: 500,
	}
}

func TestBridgeObservePerf(t *testing.T) {
	reg := NewRegistry()
	b := NewBridge(reg)
	b.ObservePerf(perfReport())

	var w strings.Builder
	if err := reg.WritePrometheus(&w); err != nil {
		t.Fatal(err)
	}
	body := w.String()
	if got := scrapeValue(t, body, MetricPerfStepsPerSec); got != 8000 {
		t.Errorf("steps/sec gauge = %d, want 8000", got)
	}
	if got := scrapeValue(t, body, MetricPerfDelivPerSec); got != 200000 {
		t.Errorf("deliveries/sec gauge = %d, want 200000", got)
	}
	if got := scrapeValue(t, body, MetricQueueDepth); got != 17 {
		t.Errorf("queue depth = %d, want 17 (folded from perf report)", got)
	}
	if got := scrapeValue(t, body, MetricPerfAllocBytes); got != 4096 {
		t.Errorf("alloc bytes = %d, want 4096", got)
	}
	if got := scrapeValue(t, body, MetricPerfGCCycles); got != 2 {
		t.Errorf("gc cycles = %d, want 2", got)
	}
	if got := scrapeValue(t, body, MetricPerfPhaseWall+`_count{phase="build"}`); got != 1 {
		t.Errorf("build phase observations = %d, want 1", got)
	}

	// The rate gauges are high-water marks: a slower later run must not
	// lower them.
	slow := perfReport()
	slow.StepsPerSec, slow.DeliveriesPerSec = 10, 20
	b.ObservePerf(slow)
	w.Reset()
	if err := reg.WritePrometheus(&w); err != nil {
		t.Fatal(err)
	}
	if got := scrapeValue(t, w.String(), MetricPerfStepsPerSec); got != 8000 {
		t.Errorf("steps/sec high-water dropped to %d after a slow run", got)
	}
}

// TestBridgeObservePerfDeterministic: a deterministic report (zeroed
// wall half) must fold queue occupancy but leave the wall-derived
// families untouched — there is no real measurement to record.
func TestBridgeObservePerfDeterministic(t *testing.T) {
	reg := NewRegistry()
	b := NewBridge(reg)
	r := perfReport()
	r.ZeroWallClock()
	b.ObservePerf(r)

	var w strings.Builder
	if err := reg.WritePrometheus(&w); err != nil {
		t.Fatal(err)
	}
	body := w.String()
	if got := scrapeValue(t, body, MetricPerfStepsPerSec); got != 0 {
		t.Errorf("deterministic report set steps/sec = %d, want 0", got)
	}
	if got := scrapeValue(t, body, MetricPerfPhaseWall+`_count{phase="run"}`); got != 0 {
		t.Errorf("deterministic report observed phase wall: %d", got)
	}
	if got := scrapeValue(t, body, MetricQueueDepth); got != 17 {
		t.Errorf("queue depth = %d, want 17 (counter-derived, always folds)", got)
	}

	var nilBridge *Bridge
	nilBridge.ObservePerf(perfReport()) // must not panic
	b.ObservePerf(nil)                  // must not panic
}

// TestBridgeObservePerfClampsPhase: unknown phase names fold into the
// bounded "other" series instead of minting new label values.
func TestBridgeObservePerfClampsPhase(t *testing.T) {
	reg := NewRegistry()
	b := NewBridge(reg)
	r := perfReport()
	r.Phases = []perf.PhaseReport{{Name: "totally-unbounded-name-42", WallMS: 5}}
	b.ObservePerf(r)

	var w strings.Builder
	if err := reg.WritePrometheus(&w); err != nil {
		t.Fatal(err)
	}
	body := w.String()
	if got := scrapeValue(t, body, MetricPerfPhaseWall+`_count{phase="other"}`); got != 1 {
		t.Errorf("unknown phase not clamped to other: %d", got)
	}
	if strings.Contains(body, "totally-unbounded-name-42") {
		t.Error("unbounded phase name leaked into the exposition")
	}
}

// TestServerIngestPerfSection: a pushed manifest carrying a perf section
// populates the throughput families and the run summary's rate fields.
func TestServerIngestPerfSection(t *testing.T) {
	srv := NewServer(NewRegistry())
	m := testManifest(10, 30, 4)
	m.Perf = perfReport()
	sum := srv.Ingest(m)
	if sum.StepsPerSec != 8000 || sum.DeliveriesPerSec != 200000 {
		t.Errorf("summary rates = %v/%v, want 8000/200000", sum.StepsPerSec, sum.DeliveriesPerSec)
	}
	var w strings.Builder
	if err := srv.Registry().WritePrometheus(&w); err != nil {
		t.Fatal(err)
	}
	if got := scrapeValue(t, w.String(), MetricPerfStepsPerSec); got != 8000 {
		t.Errorf("scraped steps/sec = %d, want 8000", got)
	}
}

// TestSSEUnderConcurrentScrape is the satellite's race check: one SSE
// subscriber must receive every ingested run event while /metrics is
// being scraped concurrently (each scrape also samples the runtime
// collector). Run with -race in CI.
func TestSSEUnderConcurrentScrape(t *testing.T) {
	srv := NewServer(NewRegistry())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	const runs = 32
	seqs := make(chan int64, runs)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		event := ""
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "event: "):
				event = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: ") && event == "run":
				var sum RunSummary
				if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &sum); err == nil {
					seqs <- sum.Seq
				}
			}
		}
	}()

	// Concurrent scrapers hammer /metrics while runs are ingested.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					r, err := http.Get(ts.URL + "/metrics")
					if err != nil {
						return
					}
					io.Copy(io.Discard, r.Body)
					r.Body.Close()
				}
			}
		}()
	}

	for i := 0; i < runs; i++ {
		m := testManifest(int64(i+1), 3*int64(i+1), 2)
		m.Perf = perfReport()
		srv.Ingest(m)
	}

	got := make(map[int64]bool, runs)
	deadline := time.After(10 * time.Second)
	for len(got) < runs {
		select {
		case s := <-seqs:
			got[s] = true
		case <-deadline:
			t.Fatalf("received %d/%d run events under concurrent scrape", len(got), runs)
		}
	}
	close(stop)
	wg.Wait()
	for i := int64(1); i <= runs; i++ {
		if !got[i] {
			t.Errorf("run event seq %d never delivered", i)
		}
	}
}
