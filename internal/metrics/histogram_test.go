package metrics

import (
	"math"
	"strings"
	"testing"
)

// TestBucketBoundaries pins the log2 bucketing: each value lands in the
// bucket whose upper bound is the smallest power of two ≥ the value, and
// boundary values (exact powers of two) belong to their own bucket, not
// the next.
func TestBucketBoundaries(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 0},
		{2, 1},
		{3, 2}, {4, 2},
		{5, 3}, {8, 3},
		{9, 4}, {16, 4},
		{1 << 19, 19},
		{1<<19 + 1, 20},
		{1 << 20, 20},
		{1<<20 + 1, histBuckets}, // overflow
		{math.MaxInt64, histBuckets},
	}
	for _, c := range cases {
		if got := bucketFor(c.v); got != c.want {
			t.Errorf("bucketFor(%d) = %d, want %d", c.v, got, c.want)
		}
		if c.v >= 1 && c.want < histBuckets {
			if bound := BucketBound(c.want); float64(c.v) > bound {
				t.Errorf("value %d exceeds its bucket bound %g", c.v, bound)
			}
		}
	}
	if !math.IsInf(BucketBound(histBuckets), 1) {
		t.Error("overflow bucket bound is not +Inf")
	}
	if BucketBound(0) != 1 || BucketBound(10) != 1024 {
		t.Errorf("finite bounds wrong: %g, %g", BucketBound(0), BucketBound(10))
	}
}

// TestHistogramExposition checks the rendered cumulative buckets against
// hand-computed counts, including the mandatory +Inf line and the
// elision of empty finite buckets.
func TestHistogramExposition(t *testing.T) {
	h := newHistogram()
	for _, v := range []int64{1, 1, 2, 7, 1 << 21} {
		h.Observe(v)
	}
	var b strings.Builder
	if err := h.write(&b, "spaa_x", `k="v"`); err != nil {
		t.Fatal(err)
	}
	want := `spaa_x_bucket{k="v",le="1"} 2
spaa_x_bucket{k="v",le="2"} 3
spaa_x_bucket{k="v",le="8"} 4
spaa_x_bucket{k="v",le="+Inf"} 5
spaa_x_sum{k="v"} 2097163
spaa_x_count{k="v"} 5
`
	if got := b.String(); got != want {
		t.Errorf("histogram exposition:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	if h.Count() != 5 {
		t.Errorf("Count = %d, want 5", h.Count())
	}
	if h.Sum() != 2097163 {
		t.Errorf("Sum = %d, want 2097163", h.Sum())
	}
}

// TestQuantileKnownDistribution feeds a known distribution (uniform
// 1..1000, each value once) and checks that the estimated quantiles are
// within one bucket-growth factor of the exact values — the accuracy
// bound log-bucketing promises.
func TestQuantileKnownDistribution(t *testing.T) {
	h := newHistogram()
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	for _, c := range []struct {
		q     float64
		exact float64
	}{
		{0.50, 500}, {0.90, 900}, {0.99, 990},
	} {
		got := h.Quantile(c.q)
		// The true value sits in a bucket (lo, 2*lo]; interpolation keeps
		// the estimate inside that bucket, so the ratio is at most 2.
		if ratio := got / c.exact; ratio < 0.5 || ratio > 2.0 {
			t.Errorf("Quantile(%g) = %g, exact %g (ratio %.2f outside [0.5, 2])",
				c.q, got, c.exact, ratio)
		}
	}
}

// TestQuantileEdgeCases covers the empty histogram, a single bucket, the
// overflow bucket, and out-of-range q.
func TestQuantileEdgeCases(t *testing.T) {
	h := newHistogram()
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile = %g, want 0", got)
	}
	h.Observe(1)
	if got := h.Quantile(1.0); got > 1 {
		t.Errorf("single-bucket Quantile(1) = %g, want ≤ 1", got)
	}
	if got := h.Quantile(2.0); got > 1 { // clamped to q=1
		t.Errorf("clamped Quantile(2) = %g, want ≤ 1", got)
	}

	over := newHistogram()
	over.Observe(1 << 30) // overflow bucket only
	want := BucketBound(histBuckets - 1)
	if got := over.Quantile(0.99); got != want {
		t.Errorf("overflow Quantile = %g, want lower bound %g", got, want)
	}
}
