package metrics

import (
	"runtime"
	"strings"
	"testing"
)

func TestRuntimeCollectorUpdate(t *testing.T) {
	reg := NewRegistry()
	rc := NewRuntimeCollector(reg)

	// Force at least one fresh GC cycle after the collector's baseline.
	runtime.GC()
	rc.Update()

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	body := b.String()

	if got := scrapeValue(t, body, MetricGoGoroutines); got < 1 {
		t.Errorf("go_goroutines = %d, want >= 1", got)
	}
	if got := scrapeValue(t, body, MetricGoHeapBytes); got <= 0 {
		t.Errorf("heap bytes = %d, want > 0", got)
	}
	if got := scrapeValue(t, body, MetricGoHeapObjects); got <= 0 {
		t.Errorf("heap objects = %d, want > 0", got)
	}
	if got := scrapeValue(t, body, MetricGoGCCycles); got < 1 {
		t.Errorf("gc cycles = %d, want >= 1 after runtime.GC()", got)
	}
	// The pause histogram saw the forced cycle.
	if got := scrapeValue(t, body, MetricGoGCPauseUS+`_count`); got < 1 {
		t.Errorf("gc pause observations = %d, want >= 1", got)
	}
	if !strings.Contains(body, "# TYPE "+MetricGoGCPauseUS+" histogram") {
		t.Error("gc pause family not rendered as histogram")
	}
}

// TestRuntimeCollectorIdempotentBetweenGCs: repeated updates with no
// intervening GC must not re-observe old pauses (the counter is a
// cycle count, not an update count).
func TestRuntimeCollectorIdempotentBetweenGCs(t *testing.T) {
	reg := NewRegistry()
	rc := NewRuntimeCollector(reg)
	runtime.GC()
	rc.Update()
	before := rc.gcPause.Count()
	rc.Update()
	rc.Update()
	if after := rc.gcPause.Count(); after != before {
		t.Errorf("pause observations grew from %d to %d without a GC", before, after)
	}
}

func TestRuntimeCollectorNil(t *testing.T) {
	var rc *RuntimeCollector
	rc.Update() // must not panic
}
