package metrics

import "repro/internal/trace"

// Canonical metric names of the query-tracing families. The same
// families are written per query by the live service (finishTrace) and
// in bulk by FoldTrace when a remote manifest's spaa-trace/v1 section
// is ingested, so a scrape looks identical either way — the same
// contract as the probe-fabric and energy families.
const (
	MetricTraceStarted    = "spaa_trace_started_total"
	MetricTraceSampled    = "spaa_trace_sampled_total"
	MetricTraceDropped    = "spaa_trace_dropped_total"
	MetricTraceSpans      = "spaa_trace_spans_total"
	MetricTraceStageUnits = "spaa_trace_stage_units"
)

// traceStageNames is the bounded stage-label vocabulary (the trace
// package's span taxonomy); spans with other stage names fold into
// "other" so remote manifests cannot grow series cardinality.
var traceStageNames = []string{
	trace.StageQuery, trace.StageAdmission, trace.StageQueueWait,
	trace.StageShed, trace.StageBreaker, trace.StageRung, trace.StageRetry,
	trace.StageBuild, trace.StageRun, "other",
}

// traceStageName clamps a span stage onto the bounded vocabulary.
func traceStageName(stage string) string {
	for _, n := range traceStageNames[:len(traceStageNames)-1] {
		if n == stage {
			return stage
		}
	}
	return "other"
}

// TraceCounters resolves the four sampler counters, creating them at
// zero on first use — the single source of truth for their help text.
func TraceCounters(reg *Registry) (started, sampled, dropped, spans *Counter) {
	started = reg.Counter(MetricTraceStarted, "query traces started (one per query reaching the service)")
	sampled = reg.Counter(MetricTraceSampled, "query traces kept by the tail sampler")
	dropped = reg.Counter(MetricTraceDropped, "query traces dropped by the tail sampler (healthy, fast, not hash-kept)")
	spans = reg.Counter(MetricTraceSpans, "spans recorded across all query traces, sampled or dropped")
	return
}

// TraceStageHist resolves the per-stage span-duration histogram for a
// (clamped) stage label. Durations are in logical units — the
// service-clock cost units the span timeline runs on.
func TraceStageHist(reg *Registry, stage string) *Histogram {
	return reg.Histogram(MetricTraceStageUnits, "span duration in logical units by stage",
		Label{Key: "stage", Value: traceStageName(stage)})
}

// MaterializeTraceFamilies pre-creates every spaa_trace_* collector at
// zero so a scrape shows the families before the first query (the
// serve-smoke CI job greps for them).
func MaterializeTraceFamilies(reg *Registry) {
	TraceCounters(reg)
	for _, stage := range traceStageNames {
		TraceStageHist(reg, stage)
	}
}

// FoldTrace folds a spaa-trace/v1 report into the trace families:
// counter totals are added, and every span of every sampled trace is
// observed into the per-stage duration histograms. Called once per
// ingested manifest, off the hot path.
func FoldTrace(reg *Registry, r *trace.Report) {
	if reg == nil || r == nil {
		return
	}
	started, sampled, dropped, spans := TraceCounters(reg)
	started.Add(r.Started)
	sampled.Add(r.Sampled)
	dropped.Add(r.Dropped)
	spans.Add(r.Spans)
	for _, tr := range r.Traces {
		for i := range tr.Spans {
			TraceStageHist(reg, tr.Spans[i].Stage).Observe(tr.Spans[i].Dur)
		}
	}
}
