package metrics

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/trace"
)

func traceReport() *trace.Report {
	col := trace.NewCollector(trace.Config{Seed: 9, KeepEvery: 2})
	for i := 0; i < 10; i++ {
		a := col.StartTrace(int64(i), "sssp", "t0", "")
		r := a.Begin(trace.StageRung, "exact")
		e := a.BeginUnder(r, trace.StageRun, "wavefront")
		a.End(e, int64(5+i))
		a.EndAt(r)
		var f trace.Flags
		if i%3 == 0 {
			f = trace.FlagDegraded
		}
		a.Finish(int64(i)+5, f)
	}
	return col.Report()
}

func TestFoldTrace(t *testing.T) {
	reg := NewRegistry()
	r := traceReport()
	FoldTrace(reg, r)
	var w strings.Builder
	if err := reg.WritePrometheus(&w); err != nil {
		t.Fatal(err)
	}
	body := w.String()
	if got := scrapeValue(t, body, MetricTraceStarted); got != r.Started {
		t.Errorf("started = %d, want %d", got, r.Started)
	}
	if got := scrapeValue(t, body, MetricTraceSampled); got != r.Sampled {
		t.Errorf("sampled = %d, want %d", got, r.Sampled)
	}
	if got := scrapeValue(t, body, MetricTraceDropped); got != r.Dropped {
		t.Errorf("dropped = %d, want %d", got, r.Dropped)
	}
	if !strings.Contains(body, MetricTraceStageUnits+`_count{stage="run"}`) {
		t.Errorf("per-stage histogram missing from exposition:\n%s", body)
	}
	// Unknown stages clamp onto "other" instead of minting new series.
	rogue := traceReport()
	rogue.Traces[0].Spans[0].Stage = "totally-unbounded-stage"
	FoldTrace(reg, rogue)
	w.Reset()
	if err := reg.WritePrometheus(&w); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(w.String(), "totally-unbounded-stage") {
		t.Error("unbounded stage name leaked into the exposition")
	}
	FoldTrace(nil, r)   // must not panic
	FoldTrace(reg, nil) // must not panic
}

// TestServerTracesEndpoint: AttachTraces wires a collector's flusher to
// the server, and GET /traces serves counters plus the sampled traces
// (flushing on demand, so a client sees its own just-finished query).
func TestServerTracesEndpoint(t *testing.T) {
	srv := NewServer(NewRegistry())
	col := trace.NewCollector(trace.Config{Seed: 4})
	stop := srv.AttachTraces(col, time.Hour) // only on-demand flushes deliver
	defer stop()

	a := col.StartTrace(0, "sssp", "acme", "")
	a.Begin(trace.StageRung, "exact")
	a.Finish(7, trace.FlagDegraded)

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	res, err := ts.Client().Get(ts.URL + "/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != 200 {
		t.Fatalf("GET /traces = %d, want 200", res.StatusCode)
	}
	var got struct {
		Started int64          `json:"started"`
		Sampled int64          `json:"sampled"`
		Count   int            `json:"count"`
		Traces  []*trace.Trace `json:"traces"`
	}
	if err := json.NewDecoder(res.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Started != 1 || got.Sampled != 1 || got.Count != 1 || len(got.Traces) != 1 {
		t.Fatalf("traces response = %+v, want the one sampled trace", got)
	}
	if got.Traces[0].Tenant != "acme" || got.Traces[0].Flags&trace.FlagDegraded == 0 {
		t.Errorf("trace content lost over the wire: %+v", got.Traces[0])
	}

	// Ingesting a manifest with a trace section also lands in /traces.
	m := testManifest(10, 30, 4)
	m.Trace = traceReport()
	srv.Ingest(m)
	res2, err := ts.Client().Get(ts.URL + "/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer res2.Body.Close()
	var got2 struct {
		Count int `json:"count"`
	}
	if err := json.NewDecoder(res2.Body).Decode(&got2); err != nil {
		t.Fatal(err)
	}
	if got2.Count != 1+len(m.Trace.Traces) {
		t.Errorf("ingested traces not served: count=%d, want %d", got2.Count, 1+len(m.Trace.Traces))
	}
}
