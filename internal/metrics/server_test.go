package metrics

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/telemetry"
)

func testManifest(spikes, deliveries, steps int64) *telemetry.Manifest {
	m := telemetry.NewManifest("spaabench", "sssp")
	m.Stats = &telemetry.RunStats{
		Spikes: spikes, Deliveries: deliveries, Steps: steps,
		MaxQueueDepth: 5, SilentStepsSkipped: 2,
	}
	return m
}

// scrapeValue extracts one series value from a Prometheus text scrape.
func scrapeValue(t *testing.T, body, series string) int64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			v, err := strconv.ParseInt(rest, 10, 64)
			if err != nil {
				t.Fatalf("series %s has non-integer value %q", series, rest)
			}
			return v
		}
	}
	t.Fatalf("series %s not in scrape:\n%s", series, body)
	return 0
}

func TestServerEndpoints(t *testing.T) {
	srv := NewServer(NewRegistry())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Liveness first: zero runs.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		OK   bool  `json:"ok"`
		Runs int64 `json:"runs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !health.OK || health.Runs != 0 {
		t.Fatalf("healthz = %+v, want ok with 0 runs", health)
	}

	// Ingest two manifests over POST /runs.
	for i, m := range []*telemetry.Manifest{testManifest(100, 300, 40), testManifest(50, 150, 20)} {
		var body bytes.Buffer
		if err := m.Encode(&body); err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/runs", "application/json", &body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("POST %d: status %d, want 202", i, resp.StatusCode)
		}
		var sum RunSummary
		if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if sum.Seq != int64(i+1) {
			t.Errorf("POST %d: seq %d, want %d", i, sum.Seq, i+1)
		}
	}

	// A malformed document counts as an ingest error, not a run.
	resp, err = http.Post(ts.URL+"/runs", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed POST: status %d, want 400", resp.StatusCode)
	}

	// GET /runs reflects both runs in index and totals.
	resp, err = http.Get(ts.URL + "/runs")
	if err != nil {
		t.Fatal(err)
	}
	var idx runsResponse
	if err := json.NewDecoder(resp.Body).Decode(&idx); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if idx.Count != 2 || idx.Totals.Runs != 2 {
		t.Fatalf("runs index = count %d totals %+v, want 2 runs", idx.Count, idx.Totals)
	}
	if idx.Totals.Spikes != 150 || idx.Totals.Deliveries != 450 || idx.Totals.Steps != 60 {
		t.Fatalf("totals %+v, want spikes 150 deliveries 450 steps 60", idx.Totals)
	}

	// /metrics carries the canonical families plus ingest accounting.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("scrape content type %q", ct)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	body := string(raw)
	if got := scrapeValue(t, body, MetricSpikes); got != 150 {
		t.Errorf("scraped spikes = %d, want 150", got)
	}
	if got := scrapeValue(t, body, MetricDeliveries); got != 450 {
		t.Errorf("scraped deliveries = %d, want 450", got)
	}
	if got := scrapeValue(t, body, "spaa_runs_ingested_total"); got != 2 {
		t.Errorf("runs ingested = %d, want 2", got)
	}
	if got := scrapeValue(t, body, "spaa_ingest_errors_total"); got != 1 {
		t.Errorf("ingest errors = %d, want 1", got)
	}
	if got := scrapeValue(t, body, `spaa_runs_total{workload="sssp"}`); got != 2 {
		t.Errorf("per-workload runs = %d, want 2", got)
	}

	// The dashboard is served at / only.
	resp, err = http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	page, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(page), "spaabench live metrics") {
		t.Error("dashboard HTML missing")
	}
	resp, err = http.Get(ts.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown path: status %d, want 404", resp.StatusCode)
	}
}

// TestServerSSE subscribes to /events, ingests a run, and expects the
// hello event followed by the run event.
func TestServerSSE(t *testing.T) {
	srv := NewServer(NewRegistry())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE content type %q", ct)
	}

	type event struct{ name, data string }
	events := make(chan event, 4)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		var cur event
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "event: "):
				cur.name = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				cur.data = strings.TrimPrefix(line, "data: ")
			case line == "" && cur.name != "":
				events <- cur
				cur = event{}
			}
		}
	}()

	wait := func(name string) event {
		t.Helper()
		select {
		case ev := <-events:
			if ev.name != name {
				t.Fatalf("got event %q, want %q", ev.name, name)
			}
			return ev
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out waiting for %q event", name)
			return event{}
		}
	}
	wait("hello")

	srv.Ingest(testManifest(33, 99, 12))
	ev := wait("run")
	var sum RunSummary
	if err := json.Unmarshal([]byte(ev.data), &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Spikes != 33 || sum.Seq != 1 {
		t.Errorf("run event %+v, want spikes 33 seq 1", sum)
	}
}

// TestSoakServeAcceptance is the PR's acceptance check: a concurrent
// soak campaign submits every run manifest to a serve daemon, and the
// /metrics scrape totals must equal the sum of the manifests' stats,
// which must equal the soak report's own accumulation.
func TestSoakServeAcceptance(t *testing.T) {
	srv := NewServer(NewRegistry())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := &http.Client{Timeout: 30 * time.Second}

	var mu sync.Mutex
	var manifests []*telemetry.Manifest
	rep, err := harness.Soak(harness.SoakConfig{
		Workers: 8, Iters: 4, Seed: 99,
		Deterministic: true,
		Submit: func(m *telemetry.Manifest) error {
			mu.Lock()
			manifests = append(manifests, m)
			mu.Unlock()
			var body bytes.Buffer
			if err := m.Encode(&body); err != nil {
				return err
			}
			resp, err := client.Post(ts.URL+"/runs", "application/json", &body)
			if err != nil {
				return err
			}
			defer resp.Body.Close()
			io.Copy(io.Discard, resp.Body)
			if resp.StatusCode != http.StatusAccepted {
				return fmt.Errorf("POST /runs: %s", resp.Status)
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Runs != 32 || rep.Errors != 0 {
		t.Fatalf("soak report: %d runs %d errors, want 32/0", rep.Runs, rep.Errors)
	}

	// Sum the emitted manifests independently.
	var wantSpikes, wantDeliveries, wantSteps int64
	for _, m := range manifests {
		if m.Stats == nil {
			continue
		}
		wantSpikes += m.Stats.Spikes
		wantDeliveries += m.Stats.Deliveries
		wantSteps += m.Stats.Steps
	}
	if wantSpikes == 0 {
		t.Fatal("soak produced no spikes; workload mix broken")
	}
	if rep.Spikes != wantSpikes || rep.Deliveries != wantDeliveries || rep.Steps != wantSteps {
		t.Fatalf("report totals (%d, %d, %d) != manifest sums (%d, %d, %d)",
			rep.Spikes, rep.Deliveries, rep.Steps, wantSpikes, wantDeliveries, wantSteps)
	}

	// The daemon's scrape and run index must agree with both.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	body := string(raw)
	if got := scrapeValue(t, body, MetricSpikes); got != wantSpikes {
		t.Errorf("scraped spikes = %d, manifests sum to %d", got, wantSpikes)
	}
	if got := scrapeValue(t, body, MetricDeliveries); got != wantDeliveries {
		t.Errorf("scraped deliveries = %d, manifests sum to %d", got, wantDeliveries)
	}
	if got := scrapeValue(t, body, MetricSteps); got != wantSteps {
		t.Errorf("scraped steps = %d, manifests sum to %d", got, wantSteps)
	}
	if got := scrapeValue(t, body, "spaa_runs_ingested_total"); got != rep.Runs {
		t.Errorf("runs ingested = %d, want %d", got, rep.Runs)
	}

	resp, err = http.Get(ts.URL + "/runs")
	if err != nil {
		t.Fatal(err)
	}
	var idx runsResponse
	if err := json.NewDecoder(resp.Body).Decode(&idx); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if idx.Totals.Spikes != wantSpikes || idx.Totals.Runs != rep.Runs {
		t.Errorf("run-index totals %+v disagree with manifests (spikes %d, runs %d)",
			idx.Totals, wantSpikes, rep.Runs)
	}
}

// TestScrapeDuringSoak scrapes /metrics while a soak mutates the
// registry through a live bridge — the -race CI job's target.
func TestScrapeDuringSoak(t *testing.T) {
	srv := NewServer(NewRegistry())
	bridge := NewBridge(srv.Registry())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := harness.Soak(harness.SoakConfig{
			Workers: 4, Iters: 4, Seed: 5,
			Probes: bridge,
			Submit: func(m *telemetry.Manifest) error { srv.Ingest(m); return nil },
		}); err != nil {
			t.Error(err)
		}
	}()
	for {
		select {
		case <-done:
			resp, err := http.Get(ts.URL + "/metrics")
			if err != nil {
				t.Fatal(err)
			}
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if !strings.Contains(string(raw), MetricSpikes) {
				t.Error("final scrape lost the spike family")
			}
			return
		default:
			resp, err := http.Get(ts.URL + "/metrics")
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}
}
