package metrics

import (
	"strings"
	"testing"

	"repro/internal/energy"
)

func energyReport() *energy.Report {
	return energy.NewReport(40, 2500, 320, 12, 100, 5000, energy.Tariffs())
}

func TestBridgeObserveEnergy(t *testing.T) {
	reg := NewRegistry()
	b := NewBridge(reg)
	r := energyReport()
	b.ObserveEnergy(r)

	var w strings.Builder
	if err := reg.WritePrometheus(&w); err != nil {
		t.Fatal(err)
	}
	body := w.String()
	if got := scrapeValue(t, body, MetricEnergyClassic); got != r.ClassicMilliPJ {
		t.Errorf("classic total = %d, want %d", got, r.ClassicMilliPJ)
	}
	ref := r.PlatformRow(energy.ReferencePlatform)
	if got := scrapeValue(t, body, MetricEnergySpiking+`{platform="`+energy.ReferencePlatform+`"}`); got != ref.SpikingMilliPJ {
		t.Errorf("reference spiking total = %d, want %d", got, ref.SpikingMilliPJ)
	}
	if got := scrapeValue(t, body, MetricEnergyAdvantage+`{platform="`+energy.ReferencePlatform+`"}`); got != ref.AdvantageMilli {
		t.Errorf("reference advantage = %d, want %d", got, ref.AdvantageMilli)
	}
	// Unpublished-tariff platforms scrape as zero, the wire spelling of "-".
	if got := scrapeValue(t, body, MetricEnergySpiking+`{platform="SpiNNaker 2"}`); got != 0 {
		t.Errorf("unpublished platform spiking total = %d, want 0", got)
	}

	// The advantage gauge is a high-water mark: a later low-advantage run
	// must not lower it.
	low := energy.NewReport(1, 1, 0, 0, 1, 1, energy.Tariffs())
	b.ObserveEnergy(low)
	w.Reset()
	if err := reg.WritePrometheus(&w); err != nil {
		t.Fatal(err)
	}
	if got := scrapeValue(t, w.String(), MetricEnergyAdvantage+`{platform="`+energy.ReferencePlatform+`"}`); got != ref.AdvantageMilli {
		t.Errorf("advantage high-water dropped to %d after a low-advantage run", got)
	}

	var nilBridge *Bridge
	nilBridge.ObserveEnergy(energyReport()) // must not panic
	b.ObserveEnergy(nil)                    // must not panic
}

// TestBridgeObserveEnergyClampsPlatform: unknown platform names in
// remote manifests are dropped instead of minting new label values.
func TestBridgeObserveEnergyClampsPlatform(t *testing.T) {
	reg := NewRegistry()
	b := NewBridge(reg)
	r := energyReport()
	r.Platforms = append(r.Platforms, energy.PlatformEnergy{
		Platform: "totally-unbounded-platform-42", SpikingMilliPJ: 7, AdvantageMilli: 9,
	})
	b.ObserveEnergy(r)

	var w strings.Builder
	if err := reg.WritePrometheus(&w); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(w.String(), "totally-unbounded-platform-42") {
		t.Error("unbounded platform name leaked into the exposition")
	}
}

// TestServerIngestEnergySection: a pushed manifest carrying an energy
// section populates the energy families and the run summary's headline
// fields.
func TestServerIngestEnergySection(t *testing.T) {
	srv := NewServer(NewRegistry())
	m := testManifest(10, 30, 4)
	m.Energy = energyReport()
	sum := srv.Ingest(m)
	if sum.ClassicMilliPJ != m.Energy.ClassicMilliPJ {
		t.Errorf("summary classic = %d, want %d", sum.ClassicMilliPJ, m.Energy.ClassicMilliPJ)
	}
	if sum.SpikingMilliPJ != m.Energy.ReferenceMilliPJ() {
		t.Errorf("summary spiking = %d, want %d", sum.SpikingMilliPJ, m.Energy.ReferenceMilliPJ())
	}
	if sum.EnergyAdvantageMilli != m.Energy.BestAdvantageMilli() {
		t.Errorf("summary advantage = %d, want %d", sum.EnergyAdvantageMilli, m.Energy.BestAdvantageMilli())
	}
	var w strings.Builder
	if err := srv.Registry().WritePrometheus(&w); err != nil {
		t.Fatal(err)
	}
	if got := scrapeValue(t, w.String(), MetricEnergyClassic); got != m.Energy.ClassicMilliPJ {
		t.Errorf("scraped classic total = %d, want %d", got, m.Energy.ClassicMilliPJ)
	}
}
