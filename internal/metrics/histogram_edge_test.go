package metrics

import (
	"math"
	"strings"
	"testing"
)

// TestQuantileEmptyHistogram pins the empty-histogram contract: every
// quantile of zero observations is 0, not NaN or a bucket bound.
func TestQuantileEmptyHistogram(t *testing.T) {
	h := newHistogram()
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty histogram Quantile(%v) = %v, want 0", q, got)
		}
	}
	if h.Count() != 0 || h.Sum() != 0 {
		t.Errorf("empty histogram count/sum = %d/%d", h.Count(), h.Sum())
	}
}

// TestQuantileSingleObservation: with one sample every quantile must
// land inside that sample's bucket (and never exceed its upper bound).
func TestQuantileSingleObservation(t *testing.T) {
	for _, v := range []int64{0, 1, 2, 3, 1000} {
		h := newHistogram()
		h.Observe(v)
		upper := BucketBound(bucketFor(v))
		lower := 0.0
		if b := bucketFor(v); b > 0 {
			lower = BucketBound(b - 1)
		}
		for _, q := range []float64{0.01, 0.5, 0.99, 1} {
			got := h.Quantile(q)
			if got < lower || got > upper {
				t.Errorf("Observe(%d): Quantile(%v) = %v outside bucket (%v, %v]", v, q, got, lower, upper)
			}
		}
	}
}

// TestQuantileAllInOverflow: observations past the last finite bound
// land in the +Inf bucket; the quantile reports the largest finite
// bound (a documented underestimate) rather than +Inf or garbage.
func TestQuantileAllInOverflow(t *testing.T) {
	h := newHistogram()
	huge := int64(1) << 40 // far beyond 2^20
	for i := 0; i < 10; i++ {
		h.Observe(huge)
	}
	want := BucketBound(histBuckets - 1)
	if math.IsInf(want, 1) {
		t.Fatal("largest finite bound is infinite; histBuckets misconfigured")
	}
	for _, q := range []float64{0.01, 0.5, 1} {
		if got := h.Quantile(q); got != want {
			t.Errorf("overflow-only Quantile(%v) = %v, want largest finite bound %v", q, got, want)
		}
	}
	if h.Count() != 10 {
		t.Errorf("count = %d, want 10", h.Count())
	}
	// The exposition still renders a finite cumulative count on +Inf.
	var b strings.Builder
	if err := h.write(&b, "x_overflow", ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `x_overflow_bucket{le="+Inf"} 10`) {
		t.Errorf("overflow bucket not rendered cumulatively:\n%s", b.String())
	}
}

// TestQuantileClampsRange: out-of-range q values clamp instead of
// extrapolating.
func TestQuantileClampsRange(t *testing.T) {
	h := newHistogram()
	h.Observe(4)
	lo, hi := h.Quantile(-1), h.Quantile(2)
	if lo < 0 || hi > BucketBound(bucketFor(4)) {
		t.Errorf("clamped quantiles out of range: q<0 -> %v, q>1 -> %v", lo, hi)
	}
}
