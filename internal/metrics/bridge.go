package metrics

import (
	"repro/internal/distance"
	"repro/internal/energy"
	"repro/internal/perf"
)

// Canonical metric names of the probe-fabric bridge. The same families
// are written by Server.Ingest when folding a remote run manifest, so a
// scrape looks identical whether the workload ran in-process (probes)
// or pushed manifests over HTTP (soak against serve).
const (
	MetricSteps        = "spaa_snn_steps_total"
	MetricSpikes       = "spaa_snn_spikes_total"
	MetricDeliveries   = "spaa_snn_deliveries_total"
	MetricActive       = "spaa_snn_active_neurons_total"
	MetricQueueDepth   = "spaa_snn_queue_depth"
	MetricSilentSteps  = "spaa_snn_silent_steps_skipped"
	MetricStepSpikes   = "spaa_snn_step_spikes"
	MetricDistanceOps  = "spaa_distance_ops_total"
	MetricDistanceL1   = "spaa_distance_movement_l1_total"
	MetricCongestRnds  = "spaa_congest_rounds_total"
	MetricCongestMsgs  = "spaa_congest_messages_total"
	MetricCongestBits  = "spaa_congest_bits_total"
	MetricFleetDeliver = "spaa_fleet_deliveries_total"

	// Throughput families fed by spaa-perf/v1 reports (ObservePerf).
	// The rate gauges are campaign high-water marks (SetMax), so a
	// scrape mid-soak answers "how fast has a run gone", independent of
	// which workload finished last.
	MetricPerfStepsPerSec  = "spaa_perf_steps_per_sec"
	MetricPerfDelivPerSec  = "spaa_perf_deliveries_per_sec"
	MetricPerfPhaseWall    = "spaa_perf_phase_wall_ms"
	MetricPerfAllocBytes   = "spaa_perf_alloc_bytes_total"
	MetricPerfAllocObjects = "spaa_perf_alloc_objects_total"
	MetricPerfGCCycles     = "spaa_perf_gc_cycles_total"

	// Energy families fed by spaa-energy/v1 reports (ObserveEnergy).
	// Spiking totals carry a platform label (the bounded Table 3 set);
	// the advantage gauge is a campaign high-water mark in milli-x,
	// matching the report's integral AdvantageMilli.
	MetricEnergySpiking   = "spaa_energy_spiking_millipicojoules_total"
	MetricEnergyClassic   = "spaa_energy_classic_millipicojoules_total"
	MetricEnergyAdvantage = "spaa_energy_advantage_ratio_milli"
)

// perfPhaseNames is the bounded phase-label vocabulary; reports with
// other phase names fold into "other" so remote manifests cannot grow
// series cardinality.
var perfPhaseNames = [4]string{"build", "run", "report", "other"}

// perfPhaseIndex clamps a phase name onto perfPhaseNames.
func perfPhaseIndex(name string) int {
	for i, n := range perfPhaseNames[:3] {
		if n == name {
			return i
		}
	}
	return 3
}

// Bridge adapts the engine probe fabric to a Registry: it satisfies
// snn.StepProbe, distance.Probe, congest.Probe, and fleet.Probe
// (structurally — no engine package imports metrics) and turns every
// callback into atomic updates on pre-resolved collectors. The contract
// matches telemetry.Recorder's: scalar arguments only, zero allocations
// per event, and a nil *Bridge is a no-op on every method, so the
// nil-bridge path costs the engine the same as running uninstrumented
// (guarded by BenchmarkEngineBridgeOverhead / TestBridgeZeroAlloc).
//
// Compose a Bridge with a telemetry.Recorder via telemetry.Tee to feed
// live metrics and the run manifest from one probed run.
type Bridge struct {
	steps, spikes, deliveries, active *Counter
	queueDepth, silentSteps           *Gauge
	stepSpikes                        *Histogram

	distOps  [3]*Counter // indexed by distance.OpKind
	distMove *Counter

	congestRounds, congestMessages, congestBits *Counter

	fleetIntra, fleetInter *Counter

	perfStepsPerSec, perfDelivPerSec *Gauge
	perfPhaseWall                    [4]*Histogram // indexed by perfPhaseIndex
	perfAllocBytes, perfAllocObjects *Counter
	perfGCCycles                     *Counter

	// Energy collectors, one spiking/advantage pair per Table 3 platform
	// (the label vocabulary is the fixed platform list, so remote
	// manifests cannot grow series cardinality).
	energyClassic       *Counter
	energyPlatformNames []string
	energySpiking       []*Counter
	energyAdvantage     []*Gauge
}

// NewBridge resolves every canonical collector in reg and returns the
// bridge. Resolution happens once, here, so the probe callbacks touch
// only atomics.
func NewBridge(reg *Registry) *Bridge {
	names := energy.PlatformNames()
	spiking := make([]*Counter, len(names))
	advantage := make([]*Gauge, len(names))
	for i, name := range names {
		spiking[i] = reg.Counter(MetricEnergySpiking, "metered spiking energy priced at the platform tariff (mpJ)", Label{Key: "platform", Value: name})
		advantage[i] = reg.Gauge(MetricEnergyAdvantage, "classic/spiking energy advantage high-water (milli-x)", Label{Key: "platform", Value: name})
	}
	return &Bridge{
		energyClassic:       reg.Counter(MetricEnergyClassic, "classic comparator energy at the CPU op tariff (mpJ)"),
		energyPlatformNames: names,
		energySpiking:       spiking,
		energyAdvantage:     advantage,
		steps:               reg.Counter(MetricSteps, "non-silent simulated steps processed"),
		spikes:              reg.Counter(MetricSpikes, "total neuron firings"),
		deliveries:          reg.Counter(MetricDeliveries, "total synaptic deliveries (energy proxy)"),
		active:              reg.Counter(MetricActive, "neuron membrane updates"),
		queueDepth:          reg.Gauge(MetricQueueDepth, "high-water mark of the pending event queue"),
		silentSteps:         reg.Gauge(MetricSilentSteps, "simulated steps skipped by the silence optimization"),
		stepSpikes:          reg.Histogram(MetricStepSpikes, "distribution of spikes per simulated step"),
		distOps: [3]*Counter{
			reg.Counter(MetricDistanceOps, "DISTANCE-machine primitives", Label{Key: "kind", Value: "load"}),
			reg.Counter(MetricDistanceOps, "DISTANCE-machine primitives", Label{Key: "kind", Value: "store"}),
			reg.Counter(MetricDistanceOps, "DISTANCE-machine primitives", Label{Key: "kind", Value: "op"}),
		},
		distMove:        reg.Counter(MetricDistanceL1, "accumulated l1 data movement"),
		congestRounds:   reg.Counter(MetricCongestRnds, "CONGEST rounds executed"),
		congestMessages: reg.Counter(MetricCongestMsgs, "CONGEST messages exchanged"),
		congestBits:     reg.Counter(MetricCongestBits, "CONGEST bits exchanged"),
		fleetIntra:      reg.Counter(MetricFleetDeliver, "chip-level spike deliveries", Label{Key: "route", Value: "intra"}),
		fleetInter:      reg.Counter(MetricFleetDeliver, "chip-level spike deliveries", Label{Key: "route", Value: "inter"}),
		perfStepsPerSec: reg.Gauge(MetricPerfStepsPerSec, "per-run engine throughput high-water (steps/sec)"),
		perfDelivPerSec: reg.Gauge(MetricPerfDelivPerSec, "per-run delivery throughput high-water (deliveries/sec)"),
		perfPhaseWall: [4]*Histogram{
			reg.Histogram(MetricPerfPhaseWall, "per-run phase wall time in milliseconds", Label{Key: "phase", Value: "build"}),
			reg.Histogram(MetricPerfPhaseWall, "per-run phase wall time in milliseconds", Label{Key: "phase", Value: "run"}),
			reg.Histogram(MetricPerfPhaseWall, "per-run phase wall time in milliseconds", Label{Key: "phase", Value: "report"}),
			reg.Histogram(MetricPerfPhaseWall, "per-run phase wall time in milliseconds", Label{Key: "phase", Value: "other"}),
		},
		perfAllocBytes:   reg.Counter(MetricPerfAllocBytes, "heap bytes allocated across tracked runs"),
		perfAllocObjects: reg.Counter(MetricPerfAllocObjects, "heap objects allocated across tracked runs"),
		perfGCCycles:     reg.Counter(MetricPerfGCCycles, "GC cycles completed during tracked runs"),
	}
}

// OnStep implements snn.StepProbe.
func (b *Bridge) OnStep(t int64, spikes, deliveries, active, queueDepth int) {
	if b == nil {
		return
	}
	b.steps.Inc()
	b.spikes.Add(int64(spikes))
	b.deliveries.Add(int64(deliveries))
	b.active.Add(int64(active))
	b.queueDepth.SetMax(int64(queueDepth))
	b.stepSpikes.Observe(int64(spikes))
}

// OnDistanceOp implements distance.Probe.
func (b *Bridge) OnDistanceOp(kind distance.OpKind, cost int64) {
	if b == nil {
		return
	}
	i := int(kind)
	if i < 0 || i >= len(b.distOps) {
		i = len(b.distOps) - 1 // unknown kinds count as generic ops
	}
	b.distOps[i].Inc()
	b.distMove.Add(cost)
}

// OnCongestRound implements congest.Probe.
func (b *Bridge) OnCongestRound(round int, messages, bits int64) {
	if b == nil {
		return
	}
	b.congestRounds.Inc()
	b.congestMessages.Add(messages)
	b.congestBits.Add(bits)
}

// OnFleetDelivery implements fleet.Probe.
func (b *Bridge) OnFleetDelivery(t int64, fromChip, toChip int) {
	if b == nil {
		return
	}
	if fromChip == toChip {
		b.fleetIntra.Inc()
	} else {
		b.fleetInter.Inc()
	}
}

// ObserveRunStats folds a completed run's aggregate simulator statistics
// into the registry: the queue-pressure signals (MaxQueueDepth high-water
// gauge, SilentStepsSkipped accumulation) that snn.Stats has carried
// since the telemetry PR but the live scrape could not see. Arguments
// are scalars so callers pass snn.Stats fields without this package
// importing the engine.
func (b *Bridge) ObserveRunStats(maxQueueDepth, silentStepsSkipped int64) {
	if b == nil {
		return
	}
	b.queueDepth.SetMax(maxQueueDepth)
	b.silentSteps.Add(silentStepsSkipped)
}

// ObservePerf folds one spaa-perf/v1 report into the throughput
// families. Wall-derived quantities are recorded only when the report
// carries real wall data (deterministic reports have it zeroed — there
// is nothing meaningful to observe); queue occupancy always folds into
// the canonical queue-depth high-water gauge. Called once per run, off
// the hot path.
func (b *Bridge) ObservePerf(r *perf.Report) {
	if b == nil || r == nil {
		return
	}
	b.queueDepth.SetMax(r.MaxQueueDepth)
	if r.WallMS <= 0 {
		return
	}
	b.perfStepsPerSec.SetMax(int64(r.StepsPerSec))
	b.perfDelivPerSec.SetMax(int64(r.DeliveriesPerSec))
	for _, ph := range r.Phases {
		b.perfPhaseWall[perfPhaseIndex(ph.Name)].Observe(int64(ph.WallMS))
	}
	if r.AllocBytes > 0 {
		b.perfAllocBytes.Add(r.AllocBytes)
	}
	if r.AllocObjects > 0 {
		b.perfAllocObjects.Add(r.AllocObjects)
	}
	if r.GCCycles > 0 {
		b.perfGCCycles.Add(r.GCCycles)
	}
}

// ObserveEnergy folds one spaa-energy/v1 report into the energy
// families: the classic comparator total, and per-platform spiking
// totals plus advantage high-water marks. Rows are matched onto the
// bridge's fixed platform vocabulary; unknown platform names in remote
// manifests are dropped rather than growing series cardinality.
// Unpublished-tariff rows (SpikingMilliPJ 0) contribute nothing —
// their scrape lines stay at zero, the wire spelling of "-". Called
// once per run, off the hot path.
func (b *Bridge) ObserveEnergy(r *energy.Report) {
	if b == nil || r == nil {
		return
	}
	if r.ClassicMilliPJ > 0 {
		b.energyClassic.Add(r.ClassicMilliPJ)
	}
	for _, row := range r.Platforms {
		for i, name := range b.energyPlatformNames {
			if name != row.Platform {
				continue
			}
			if row.SpikingMilliPJ > 0 {
				b.energySpiking[i].Add(row.SpikingMilliPJ)
			}
			b.energyAdvantage[i].SetMax(row.AdvantageMilli)
			break
		}
	}
}
