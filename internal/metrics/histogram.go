package metrics

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sync/atomic"
)

// histBuckets is the number of finite buckets: upper bounds 1, 2, 4, …,
// 2^(histBuckets-1), with one extra overflow bucket rendered as +Inf.
// 2^20 covers per-step spike counts, per-run costs, and millisecond
// latencies; larger observations land in the overflow bucket and only
// widen the top quantile estimate.
const histBuckets = 21

// Histogram is a log2-bucketed histogram of non-negative int64
// observations. Observe is lock-free (one atomic add on the bucket, one
// on the sum), so the engine-side Bridge can feed it from the step loop
// without allocation. Bucket bounds are fixed powers of two: coarse, but
// quantile estimates interpolate within a bucket, keeping relative error
// bounded by the bucket growth factor — accurate enough for the p50/p90/
// p99 the dashboard shows.
type Histogram struct {
	counts [histBuckets + 1]atomic.Int64 // [histBuckets] is the +Inf overflow
	sum    atomic.Int64
}

func newHistogram() *Histogram { return &Histogram{} }

// bucketFor maps a value to its bucket index: v ≤ 1 → 0, otherwise the
// index of the smallest power-of-two upper bound ≥ v.
func bucketFor(v int64) int {
	if v <= 1 {
		return 0
	}
	idx := bits.Len64(uint64(v - 1))
	if idx > histBuckets {
		return histBuckets
	}
	return idx
}

// BucketBound returns the upper bound of finite bucket i (math.Inf(1)
// for the overflow bucket) — exported for boundary tests and dashboards.
func BucketBound(i int) float64 {
	if i >= histBuckets {
		return math.Inf(1)
	}
	return float64(int64(1) << i)
}

// Observe records one value. Negative observations clamp to the first
// bucket (cost measures are non-negative by construction; a negative
// value is a caller bug we choose to absorb rather than panic in the
// step loop).
func (h *Histogram) Observe(v int64) {
	h.counts[bucketFor(v)].Add(1)
	if v > 0 {
		h.sum.Add(v)
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	var total int64
	for i := range h.counts {
		total += h.counts[i].Load()
	}
	return total
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Quantile estimates the q-quantile (0 < q ≤ 1) by linear interpolation
// inside the containing bucket. Returns 0 when the histogram is empty.
// The overflow bucket reports its lower bound (the largest finite
// boundary) — an underestimate, flagged by the dashboard as "≥".
func (h *Histogram) Quantile(q float64) float64 {
	var counts [histBuckets + 1]int64
	var total int64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(total)
	var cum float64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= target {
			if i >= histBuckets {
				return BucketBound(histBuckets - 1)
			}
			lower := 0.0
			if i > 0 {
				lower = BucketBound(i - 1)
			}
			upper := BucketBound(i)
			frac := (target - cum) / float64(c)
			return lower + frac*(upper-lower)
		}
		cum = next
	}
	return BucketBound(histBuckets - 1)
}

// write renders the histogram in exposition format: cumulative
// `_bucket{le="..."}` series (empty buckets elided except the mandatory
// +Inf), then `_sum` and `_count`.
func (h *Histogram) write(w io.Writer, name, sig string) error {
	var cum int64
	for i := 0; i <= histBuckets; i++ {
		c := h.counts[i].Load()
		cum += c
		if c == 0 && i < histBuckets {
			continue
		}
		le := `le="+Inf"`
		if i < histBuckets {
			le = fmt.Sprintf(`le="%d"`, int64(1)<<i)
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", seriesName(name+"_bucket", sig, le), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s %d\n", seriesName(name+"_sum", sig, ""), h.sum.Load()); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %d\n", seriesName(name+"_count", sig, ""), cum)
	return err
}
