package metrics

// dashboardHTML is the single-file live dashboard `spaabench serve`
// returns at "/": stat tiles for the headline cost totals and the
// throughput and energy-advantage high-water marks, per-run line panels
// (spikes, engine steps/sec, reference-platform spiking energy) fed by
// the /events SSE stream, a table of recent runs
// (the accessible, color-free view of the same data), and a query-trace
// waterfall fed by polling /traces (the tail-sampled slow/degraded
// queries, one lane per span). No external assets — the daemon works
// air-gapped.
//
// Colors are role-based CSS custom properties with validated light and
// dark values (the dark steps are selected for the dark surface, not an
// automatic flip); the single series needs no legend, and all text wears
// ink tokens rather than series color.
const dashboardHTML = `<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>spaabench live metrics</title>
<style>
  :root {
    color-scheme: light;
    --surface-1: #fcfcfb;
    --surface-2: #f1f0ee;
    --border: #d8d7d2;
    --text-primary: #0b0b0b;
    --text-secondary: #52514e;
    --series-1: #2a78d6;
    --good: #008300;
  }
  @media (prefers-color-scheme: dark) {
    :root {
      color-scheme: dark;
      --surface-1: #1a1a19;
      --surface-2: #242422;
      --border: #3a3936;
      --text-primary: #ffffff;
      --text-secondary: #c3c2b7;
      --series-1: #3987e5;
      --good: #1baf7a;
    }
  }
  * { box-sizing: border-box; }
  body {
    margin: 0; padding: 24px;
    background: var(--surface-1); color: var(--text-primary);
    font: 14px/1.45 system-ui, -apple-system, sans-serif;
  }
  header { display: flex; align-items: baseline; gap: 12px; margin-bottom: 20px; }
  h1 { font-size: 18px; font-weight: 600; margin: 0; }
  .sub { color: var(--text-secondary); font-size: 13px; }
  .dot { display: inline-block; width: 8px; height: 8px; border-radius: 50%;
         background: var(--good); margin-right: 6px; }
  .tiles { display: grid; grid-template-columns: repeat(auto-fit, minmax(150px, 1fr));
           gap: 12px; margin-bottom: 20px; }
  .tile { background: var(--surface-2); border: 1px solid var(--border);
          border-radius: 8px; padding: 12px 14px; }
  .tile .label { color: var(--text-secondary); font-size: 12px; margin-bottom: 4px; }
  .tile .value { font-size: 22px; font-weight: 600; font-variant-numeric: tabular-nums; }
  .tile .hint { color: var(--text-secondary); font-size: 11px; margin-top: 2px; }
  .panel { background: var(--surface-2); border: 1px solid var(--border);
           border-radius: 8px; padding: 14px; margin-bottom: 20px; }
  .panel h2 { font-size: 13px; font-weight: 600; margin: 0 0 10px;
              color: var(--text-secondary); }
  svg text { fill: var(--text-secondary); font-size: 11px; }
  #tip { position: fixed; pointer-events: none; display: none;
         background: var(--surface-1); border: 1px solid var(--border);
         border-radius: 6px; padding: 6px 8px; font-size: 12px; }
  .wf { margin-bottom: 14px; }
  .wf .head { font-size: 12px; margin-bottom: 2px; font-variant-numeric: tabular-nums; }
  .wf .lane { display: flex; align-items: center; gap: 8px; margin: 1px 0; }
  .wf .name { width: 190px; flex: none; font-size: 11px; color: var(--text-secondary);
              overflow: hidden; text-overflow: ellipsis; white-space: nowrap; }
  .wf .rail { position: relative; flex: 1; height: 10px; background: var(--surface-1);
              border: 1px solid var(--border); border-radius: 3px; }
  .wf .bar { position: absolute; top: 1px; bottom: 1px; background: var(--series-1);
             border-radius: 2px; min-width: 2px; }
  table { width: 100%; border-collapse: collapse; font-variant-numeric: tabular-nums; }
  th, td { text-align: right; padding: 5px 10px; border-bottom: 1px solid var(--border);
           font-size: 13px; }
  th { color: var(--text-secondary); font-weight: 500; }
  th:first-child, td:first-child, th:nth-child(2), td:nth-child(2) { text-align: left; }
</style>
</head>
<body>
<header>
  <h1><span class="dot"></span>spaabench live metrics</h1>
  <span class="sub" id="status">connecting…</span>
</header>

<div class="tiles">
  <div class="tile"><div class="label">Runs ingested</div><div class="value" id="t-runs">0</div></div>
  <div class="tile"><div class="label">Spikes</div><div class="value" id="t-spikes">0</div></div>
  <div class="tile"><div class="label">Deliveries</div><div class="value" id="t-deliv">0</div></div>
  <div class="tile"><div class="label">Steps</div><div class="value" id="t-steps">0</div></div>
  <div class="tile"><div class="label">Queue depth (max)</div><div class="value" id="t-queue">0</div>
    <div class="hint">pending-event high water</div></div>
  <div class="tile"><div class="label">Silent steps skipped</div><div class="value" id="t-silent">0</div>
    <div class="hint">event-driven payoff</div></div>
  <div class="tile"><div class="label">Run wall ms</div><div class="value" id="t-wall">–</div>
    <div class="hint">p50 · p90 · p99</div></div>
  <div class="tile"><div class="label">Steps/sec (best)</div><div class="value" id="t-sps">–</div>
    <div class="hint">engine throughput high water</div></div>
  <div class="tile"><div class="label">Deliveries/sec (best)</div><div class="value" id="t-dps">–</div>
    <div class="hint">synaptic throughput high water</div></div>
  <div class="tile"><div class="label">Energy advantage (best)</div><div class="value" id="t-energy">–</div>
    <div class="hint">classic/spiking joules high water</div></div>
</div>

<div class="panel">
  <h2>Spikes per run (last 120 ingested)</h2>
  <svg id="chart" width="100%" height="140" viewBox="0 0 960 140" preserveAspectRatio="none"></svg>
</div>

<div class="panel">
  <h2>Engine throughput per run (steps/sec, last 120 with perf data)</h2>
  <svg id="chart-perf" width="100%" height="140" viewBox="0 0 960 140" preserveAspectRatio="none"></svg>
</div>

<div class="panel">
  <h2>Spiking energy per run (reference-platform mpJ, last 120 with energy data)</h2>
  <svg id="chart-energy" width="100%" height="140" viewBox="0 0 960 140" preserveAspectRatio="none"></svg>
</div>

<div class="panel">
  <h2>Recent runs</h2>
  <table>
    <thead><tr><th>#</th><th>workload</th><th>spikes</th><th>deliveries</th>
      <th>steps</th><th>queue</th><th>wall ms</th></tr></thead>
    <tbody id="rows"></tbody>
  </table>
</div>
<div class="panel">
  <h2>Query traces (tail-sampled: shed, degraded, timed out, p99-slow)</h2>
  <div id="traces" class="sub">no traces yet</div>
</div>
<div id="tip"></div>

<script>
"use strict";
const fmt = n => n.toLocaleString("en-US");
const recent = [];
const totals = { runs: 0, spikes: 0, deliveries: 0, steps: 0, silent: 0 };
let maxQueue = 0;
let maxSps = 0, maxDps = 0;
let maxAdv = 0;

function setTiles() {
  document.getElementById("t-runs").textContent = fmt(totals.runs);
  document.getElementById("t-spikes").textContent = fmt(totals.spikes);
  document.getElementById("t-deliv").textContent = fmt(totals.deliveries);
  document.getElementById("t-steps").textContent = fmt(totals.steps);
  document.getElementById("t-queue").textContent = fmt(maxQueue);
  document.getElementById("t-silent").textContent = fmt(totals.silent);
  document.getElementById("t-sps").textContent = maxSps > 0 ? fmt(Math.round(maxSps)) : "–";
  document.getElementById("t-dps").textContent = maxDps > 0 ? fmt(Math.round(maxDps)) : "–";
  document.getElementById("t-energy").textContent = maxAdv > 0 ? fmt(Math.round(maxAdv / 1000)) + "x" : "–";
}

function drawSeries(svgId, pts, value, describe) {
  const svg = document.getElementById(svgId);
  svg.innerHTML = "";
  if (pts.length < 2) return;
  const w = 960, h = 140, pad = 6;
  const max = Math.max(1, ...pts.map(value));
  const x = i => pad + i * (w - 2 * pad) / (pts.length - 1);
  const y = v => h - pad - v * (h - 2 * pad) / max;
  const d = pts.map((p, i) => (i ? "L" : "M") + x(i).toFixed(1) + " " + y(value(p)).toFixed(1)).join(" ");
  const path = document.createElementNS("http://www.w3.org/2000/svg", "path");
  path.setAttribute("d", d);
  path.setAttribute("fill", "none");
  path.setAttribute("stroke", getComputedStyle(document.body).getPropertyValue("--series-1"));
  path.setAttribute("stroke-width", "2");
  svg.appendChild(path);
  svg.onmousemove = ev => {
    const r = svg.getBoundingClientRect();
    const i = Math.max(0, Math.min(pts.length - 1,
      Math.round((ev.clientX - r.left) / r.width * (pts.length - 1))));
    const tip = document.getElementById("tip");
    tip.style.display = "block";
    tip.style.left = (ev.clientX + 12) + "px";
    tip.style.top = (ev.clientY + 12) + "px";
    tip.textContent = describe(pts[i]);
  };
  svg.onmouseleave = () => { document.getElementById("tip").style.display = "none"; };
}

function drawChart() {
  drawSeries("chart", recent.slice(-120), p => p.spikes,
    p => "run #" + p.seq + " (" + p.command + "): " + fmt(p.spikes) + " spikes");
  drawSeries("chart-perf", recent.filter(p => p.steps_per_sec > 0).slice(-120),
    p => p.steps_per_sec,
    p => "run #" + p.seq + " (" + p.command + "): " +
      fmt(Math.round(p.steps_per_sec)) + " steps/sec");
  drawSeries("chart-energy", recent.filter(p => p.spiking_millipj > 0).slice(-120),
    p => p.spiking_millipj,
    p => "run #" + p.seq + " (" + p.command + "): " +
      fmt(p.spiking_millipj) + " mpJ spiking");
}

function addRow(r) {
  const tb = document.getElementById("rows");
  const tr = document.createElement("tr");
  const cells = [r.seq, r.command, fmt(r.spikes), fmt(r.deliveries),
    fmt(r.steps), fmt(r.max_queue_depth), r.wall_ms.toFixed(2)];
  for (const c of cells) {
    const td = document.createElement("td");
    td.textContent = c;
    tr.appendChild(td);
  }
  tb.insertBefore(tr, tb.firstChild);
  while (tb.children.length > 20) tb.removeChild(tb.lastChild);
}

function onRun(r) {
  totals.runs++;
  totals.spikes += r.spikes;
  totals.deliveries += r.deliveries;
  totals.steps += r.steps;
  totals.silent += r.silent_steps_skipped;
  if (r.max_queue_depth > maxQueue) maxQueue = r.max_queue_depth;
  if (r.steps_per_sec > maxSps) maxSps = r.steps_per_sec;
  if (r.deliveries_per_sec > maxDps) maxDps = r.deliveries_per_sec;
  if (r.energy_advantage_milli > maxAdv) maxAdv = r.energy_advantage_milli;
  document.getElementById("t-wall").textContent =
    r.wall_p50.toFixed(1) + " · " + r.wall_p90.toFixed(1) + " · " + r.wall_p99.toFixed(1);
  recent.push(r);
  if (recent.length > 600) recent.shift();
  setTiles(); drawChart(); addRow(r);
}

fetch("/runs").then(r => r.json()).then(idx => {
  totals.runs = idx.totals.runs;
  totals.spikes = idx.totals.spikes;
  totals.deliveries = idx.totals.deliveries;
  totals.steps = idx.totals.steps;
  totals.silent = idx.totals.silent_steps_skipped;
  for (const r of idx.runs.slice(-120)) {
    if (r.max_queue_depth > maxQueue) maxQueue = r.max_queue_depth;
    if (r.steps_per_sec > maxSps) maxSps = r.steps_per_sec;
    if (r.deliveries_per_sec > maxDps) maxDps = r.deliveries_per_sec;
    if (r.energy_advantage_milli > maxAdv) maxAdv = r.energy_advantage_milli;
    recent.push(r);
  }
  setTiles(); drawChart();
  for (const r of idx.runs.slice(-20)) addRow(r);
});

const FLAG_NAMES = ["shed", "degraded", "timed_out", "error", "slow"];
function flagText(bits) {
  const out = [];
  FLAG_NAMES.forEach((n, i) => { if (bits & (1 << i)) out.push(n); });
  return out.length ? " [" + out.join(",") + "]" : "";
}

function renderTraces(doc) {
  const box = document.getElementById("traces");
  if (!doc.traces || doc.traces.length === 0) return;
  box.classList.remove("sub");
  box.innerHTML = "";
  for (const t of doc.traces.slice(-8).reverse()) {
    const wf = document.createElement("div");
    wf.className = "wf";
    const head = document.createElement("div");
    head.className = "head";
    head.textContent = t.id + "  " + t.workload + "/" + (t.tenant || "-") +
      "  dur=" + fmt(t.dur) + flagText(t.flags || 0);
    wf.appendChild(head);
    const scale = Math.max(1, t.dur);
    for (const s of t.spans) {
      const lane = document.createElement("div");
      lane.className = "lane";
      const name = document.createElement("div");
      name.className = "name";
      name.textContent = s.stage + (s.detail ? ":" + s.detail : "");
      const rail = document.createElement("div");
      rail.className = "rail";
      const bar = document.createElement("div");
      bar.className = "bar";
      bar.style.left = (100 * s.start / scale) + "%";
      bar.style.width = Math.max(0.5, 100 * s.dur / scale) + "%";
      bar.title = s.start + "+" + s.dur +
        (s.steps ? " steps=" + s.steps + " deliveries=" + (s.deliveries || 0) : "");
      rail.appendChild(bar);
      lane.appendChild(name);
      lane.appendChild(rail);
      wf.appendChild(lane);
    }
    box.appendChild(wf);
  }
}

function pollTraces() {
  fetch("/traces").then(r => r.ok ? r.json() : null)
    .then(doc => { if (doc) renderTraces(doc); })
    .catch(() => {});
}
pollTraces();
setInterval(pollTraces, 5000);

const es = new EventSource("/events");
es.addEventListener("hello", () => {
  document.getElementById("status").textContent = "live";
});
es.addEventListener("run", ev => onRun(JSON.parse(ev.data)));
es.onerror = () => { document.getElementById("status").textContent = "reconnecting…"; };
</script>
</body>
</html>
`
