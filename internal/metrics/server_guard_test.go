package metrics

import (
	"bufio"
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"
)

// TestIngestRejectsOversizedBody: a POST /runs body past the ingest cap
// must be refused with 413, not read to completion (or worse, OOM the
// daemon), and must count as an ingest error.
func TestIngestRejectsOversizedBody(t *testing.T) {
	srv := NewServer(NewRegistry())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// A syntactically valid JSON prefix followed by padding past the
	// cap: the JSON decoder keeps reading until MaxBytesReader trips.
	pad := bytes.Repeat([]byte(" "), maxManifestBytes+1024)
	body := append([]byte(`{"schema":"spaa-run-manifest/v1","pad":"`), pad...)
	body = append(body, `"}`...)
	resp, err := http.Post(ts.URL+"/runs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized ingest = %d, want 413", resp.StatusCode)
	}
	if got := srv.badRequests.Value(); got != 1 {
		t.Fatalf("spaa_ingest_errors_total = %d, want 1", got)
	}
	// The daemon is still healthy afterwards.
	ok, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	ok.Body.Close()
	if ok.StatusCode != http.StatusOK {
		t.Fatalf("healthz after oversized ingest = %d", ok.StatusCode)
	}
}

// TestIngestRejectsWrongContentType: /runs ingests JSON manifests only.
func TestIngestRejectsWrongContentType(t *testing.T) {
	srv := NewServer(NewRegistry())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, ct := range []string{"", "text/plain", "application/x-www-form-urlencoded"} {
		resp, err := http.Post(ts.URL+"/runs", ct, strings.NewReader(`{}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusUnsupportedMediaType {
			t.Fatalf("Content-Type %q ingest = %d, want 415", ct, resp.StatusCode)
		}
	}
	// Parameters on the media type are fine.
	resp, err := http.Post(ts.URL+"/runs", "application/json; charset=utf-8",
		strings.NewReader(`{not json`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("parameterized application/json = %d, want 400 (parse error)", resp.StatusCode)
	}
}

// TestEventsTeardownOnDisconnect: dropping an /events subscriber must
// release its handler goroutine and its subscription entry promptly —
// a leaked handler would pile up one goroutine per reconnecting
// dashboard for the life of the daemon.
func TestEventsTeardownOnDisconnect(t *testing.T) {
	srv := NewServer(NewRegistry())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	before := runtime.NumGoroutine()

	const subscribers = 4
	cancels := make([]context.CancelFunc, 0, subscribers)
	for i := 0; i < subscribers; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		cancels = append(cancels, cancel)
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/events", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		// Read the hello frame so the subscription is fully registered.
		sc := bufio.NewScanner(resp.Body)
		if !sc.Scan() || !strings.HasPrefix(sc.Text(), "event: hello") {
			t.Fatalf("subscriber %d: no hello frame (got %q)", i, sc.Text())
		}
		go func() {
			defer resp.Body.Close()
			for sc.Scan() { // drain until the context cancel tears it down
			}
		}()
	}
	if got := srv.subscriberCount(); got != subscribers {
		t.Fatalf("subscriber count = %d, want %d", got, subscribers)
	}

	for _, cancel := range cancels {
		cancel()
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.subscriberCount() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("subscribers not torn down: %d still registered", srv.subscriberCount())
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The handler goroutines must be gone too (allow slack for the test
	// server's own transient conns and the drain goroutines above).
	for {
		if g := runtime.NumGoroutine(); g <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines after disconnect = %d, want <= %d+2", runtime.NumGoroutine(), before)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
