package metrics

import (
	"strings"
	"sync"
	"testing"
)

// TestWritePrometheusGolden pins the exposition format: header lines,
// family and series ordering, label rendering, histogram shape. The
// output must be byte-stable for a given registry state — scrapes are
// diffed in CI.
func TestWritePrometheusGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("spaa_snn_spikes_total", "total neuron firings").Add(42)
	reg.Counter("spaa_fleet_deliveries_total", "chip-level spike deliveries",
		Label{Key: "route", Value: "intra"}).Add(7)
	reg.Counter("spaa_fleet_deliveries_total", "chip-level spike deliveries",
		Label{Key: "route", Value: "inter"}).Add(3)
	reg.Gauge("spaa_snn_queue_depth", "high-water mark of the pending event queue").Set(9)
	h := reg.Histogram("spaa_run_wall_ms", "per-run wall time in milliseconds")
	h.Observe(1)
	h.Observe(3)
	h.Observe(3)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP spaa_fleet_deliveries_total chip-level spike deliveries
# TYPE spaa_fleet_deliveries_total counter
spaa_fleet_deliveries_total{route="inter"} 3
spaa_fleet_deliveries_total{route="intra"} 7
# HELP spaa_run_wall_ms per-run wall time in milliseconds
# TYPE spaa_run_wall_ms histogram
spaa_run_wall_ms_bucket{le="1"} 1
spaa_run_wall_ms_bucket{le="4"} 3
spaa_run_wall_ms_bucket{le="+Inf"} 3
spaa_run_wall_ms_sum 7
spaa_run_wall_ms_count 3
# HELP spaa_snn_queue_depth high-water mark of the pending event queue
# TYPE spaa_snn_queue_depth gauge
spaa_snn_queue_depth 9
# HELP spaa_snn_spikes_total total neuron firings
# TYPE spaa_snn_spikes_total counter
spaa_snn_spikes_total 42
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestExpositionDeterministic renders the same registry twice and after
// re-registration in a different order; the bytes must match.
func TestExpositionDeterministic(t *testing.T) {
	build := func(order []string) string {
		reg := NewRegistry()
		for _, name := range order {
			reg.Counter(name, "h").Inc()
		}
		reg.Counter("spaa_x_total", "x", Label{Key: "b", Value: "2"}, Label{Key: "a", Value: "1"}).Inc()
		var b strings.Builder
		if err := reg.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	a := build([]string{"spaa_a_total", "spaa_b_total", "spaa_c_total"})
	b := build([]string{"spaa_c_total", "spaa_a_total", "spaa_b_total"})
	if a != b {
		t.Errorf("registration order leaked into exposition:\n%s\nvs\n%s", a, b)
	}
	if !strings.Contains(a, `spaa_x_total{a="1",b="2"} 1`) {
		t.Errorf("labels not canonically sorted:\n%s", a)
	}
}

// TestRegisterIdentity checks the accessor contract: same (name, labels)
// returns the same collector; a type clash panics.
func TestRegisterIdentity(t *testing.T) {
	reg := NewRegistry()
	c1 := reg.Counter("spaa_a_total", "h", Label{Key: "k", Value: "v"})
	c2 := reg.Counter("spaa_a_total", "h", Label{Key: "k", Value: "v"})
	if c1 != c2 {
		t.Error("same series resolved to distinct counters")
	}
	c1.Add(5)
	if c2.Value() != 5 {
		t.Errorf("shared series value = %d, want 5", c2.Value())
	}
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter name as gauge did not panic")
		}
	}()
	reg.Gauge("spaa_a_total", "h")
}

func TestInvalidNamePanics(t *testing.T) {
	reg := NewRegistry()
	for _, bad := range []string{"1starts_with_digit", "has-dash", "has space", ""} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q did not panic", bad)
				}
			}()
			reg.Counter(bad, "h")
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("invalid label key did not panic")
			}
		}()
		reg.Counter("spaa_ok_total", "h", Label{Key: "bad-key", Value: "v"})
	}()
}

func TestCounterNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative counter delta did not panic")
		}
	}()
	var c Counter
	c.Add(-1)
}

func TestGaugeSetMax(t *testing.T) {
	var g Gauge
	g.SetMax(5)
	g.SetMax(3)
	if g.Value() != 5 {
		t.Errorf("SetMax regressed: %d, want 5", g.Value())
	}
	g.SetMax(9)
	if g.Value() != 9 {
		t.Errorf("SetMax did not raise: %d, want 9", g.Value())
	}
}

// TestConcurrentWrites hammers one counter, one gauge and one histogram
// from many goroutines (run under -race in CI) and checks the totals.
func TestConcurrentWrites(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("spaa_c_total", "h")
	g := reg.Gauge("spaa_g", "h")
	h := reg.Histogram("spaa_h", "h")
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.SetMax(int64(w*perWorker + i))
				h.Observe(int64(i))
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != workers*perWorker {
		t.Errorf("counter = %d, want %d", c.Value(), workers*perWorker)
	}
	if g.Value() != workers*perWorker-1 {
		t.Errorf("gauge high water = %d, want %d", g.Value(), workers*perWorker-1)
	}
	if h.Count() != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*perWorker)
	}
}
