package metrics

import (
	"runtime"
	"sync"
)

// Go runtime process-health families. They live next to the workload
// families so a soak dashboard shows goroutine count, heap pressure,
// and GC pauses beside throughput — but they describe the *process*,
// not the model, so none of them appear in manifests or baselines.
const (
	MetricGoGoroutines  = "go_goroutines"
	MetricGoHeapBytes   = "go_memstats_heap_alloc_bytes"
	MetricGoHeapObjects = "go_memstats_heap_objects"
	MetricGoGCCycles    = "go_gc_cycles_total"
	MetricGoGCPauseUS   = "go_gc_pause_us"
)

// RuntimeCollector samples Go runtime health into a registry:
// go_goroutines, heap gauges, a GC-cycle counter, and a log2 histogram
// of individual GC pause times in microseconds (µs keeps typical pauses
// — tens of µs to a few ms — inside the histogram's finite 2^0..2^20
// bucket range; nanoseconds would push everything into overflow).
//
// Update is pull-driven: the Server calls it at the top of every
// /metrics scrape, so the exposition reflects scrape-time state without
// any background goroutine, preserving the registry's deterministic
// exposition discipline (sampling happens at a well-defined point, and
// an idle daemon stays byte-stable between scrapes).
type RuntimeCollector struct {
	goroutines  *Gauge
	heapBytes   *Gauge
	heapObjects *Gauge
	gcCycles    *Counter
	gcPause     *Histogram

	mu        sync.Mutex
	lastNumGC uint32 // guarded by mu
}

// NewRuntimeCollector registers the runtime families in reg and returns
// the collector. The GC baseline starts at the current cycle count so
// pauses from before the collector existed are not attributed to it.
func NewRuntimeCollector(reg *Registry) *RuntimeCollector {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return &RuntimeCollector{
		goroutines:  reg.Gauge(MetricGoGoroutines, "currently live goroutines"),
		heapBytes:   reg.Gauge(MetricGoHeapBytes, "bytes of allocated heap objects"),
		heapObjects: reg.Gauge(MetricGoHeapObjects, "number of allocated heap objects"),
		gcCycles:    reg.Counter(MetricGoGCCycles, "completed GC cycles"),
		gcPause:     reg.Histogram(MetricGoGCPauseUS, "stop-the-world GC pause durations in microseconds"),
		lastNumGC:   ms.NumGC,
	}
}

// Update refreshes every runtime family from the current process state.
// Safe for concurrent use (scrapes may overlap); each completed GC
// cycle's pause is observed exactly once via the MemStats pause ring.
func (c *RuntimeCollector) Update() {
	if c == nil {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	c.goroutines.Set(int64(runtime.NumGoroutine()))
	c.heapBytes.Set(int64(ms.HeapAlloc))
	c.heapObjects.Set(int64(ms.HeapObjects))

	c.mu.Lock()
	last := c.lastNumGC
	if ms.NumGC > last {
		fresh := ms.NumGC - last
		c.gcCycles.Add(int64(fresh))
		// PauseNs is a ring of the last 256 pause times; cycles beyond
		// the ring's reach (a scrape gap spanning >256 GCs) are counted
		// above but their individual pauses are unrecoverable.
		if fresh > uint32(len(ms.PauseNs)) {
			fresh = uint32(len(ms.PauseNs))
		}
		for i := ms.NumGC - fresh; i < ms.NumGC; i++ {
			pauseUS := int64(ms.PauseNs[(i+uint32(len(ms.PauseNs))-1)%uint32(len(ms.PauseNs))] / 1000)
			c.gcPause.Observe(pauseUS)
		}
		c.lastNumGC = ms.NumGC
	}
	c.mu.Unlock()
}
