// Package metrics is the live half of the observability story: a
// stdlib-only, concurrency-safe metrics registry exposed in Prometheus
// text exposition format. Where internal/telemetry turns one run into an
// after-the-fact artifact (manifest, trace), this package aggregates the
// same cost measures — spikes, deliveries, steps, ℓ1 movement, CONGEST
// bits, chip crossings — across many concurrent runs into scrape-able
// counters, gauges, and log-bucketed histograms, the operational view a
// production deployment serving sustained traffic needs.
//
// The write path is lock-free: every collector is a fixed set of atomic
// words, so probes can feed the registry from the engine step loop under
// the same zero-allocation contract the probe fabric guarantees (see
// Bridge). Registration takes a registry-level mutex and is expected at
// setup time only.
//
// Metric names follow the Prometheus conventions and the repository
// scheme documented in docs/OBSERVABILITY.md: `spaa_` prefix, `_total`
// suffix on counters, base units in the name. The spaavet `metricname`
// analyzer enforces the naming rules statically.
package metrics

import (
	"fmt"
	"io"
	"net/http"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// validName is the Prometheus metric-name charset; validLabel the
// label-key charset (no colons).
var (
	validName  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	validLabel = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// Label is one metric label pair. Label keys must be drawn from a small
// bounded set (workload names, op kinds, routes) — never per-entity
// identifiers like neuron or vertex ids, which would explode series
// cardinality. The spaavet metricname analyzer denylists the known
// unbounded keys.
type Label struct {
	Key, Value string
}

// Counter is a monotonically increasing metric (atomic).
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by delta; negative deltas panic (counters
// are monotone by definition — use a Gauge for values that can fall).
func (c *Counter) Add(delta int64) {
	if delta < 0 {
		panic(fmt.Sprintf("metrics: negative counter delta %d", delta))
	}
	c.v.Add(delta)
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down (atomic).
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add accumulates delta (may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// SetMax raises the gauge to v if v exceeds the current value — the
// high-water-mark update MaxQueueDepth-style signals need, safe under
// concurrent writers.
func (g *Gauge) SetMax(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// collector is one registered series: its label signature plus the
// backing instrument (exactly one of counter/gauge/histogram non-nil).
type collector struct {
	signature string // canonical sorted `k="v"` list, "" when unlabelled
	counter   *Counter
	gauge     *Gauge
	histogram *Histogram
}

// family groups every series registered under one metric name.
type family struct {
	name, help, typ string
	series          map[string]*collector
}

// Registry holds named metric families and renders them in Prometheus
// text format. The zero value is not usable; call NewRegistry. All
// methods are safe for concurrent use; the returned collectors write
// lock-free.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family // guarded by mu
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// signature renders labels in canonical (key-sorted) order. Registration
// is setup-time, so the sort and allocations here are off the hot path.
func signature(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if !validLabel.MatchString(l.Key) {
			panic(fmt.Sprintf("metrics: invalid label key %q", l.Key))
		}
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, escapeLabelValue(l.Value))
	}
	return b.String()
}

// escapeLabelValue applies the exposition-format escapes (backslash,
// quote, newline); %q above handles quote/backslash, so only newlines
// need normalizing first.
func escapeLabelValue(v string) string {
	return strings.ReplaceAll(v, "\n", `\n`)
}

// register resolves (name, signature) to its collector, creating family
// and series on first use. Type or help mismatches on an existing name
// panic: collector identity is a programming invariant, not runtime
// input.
func (r *Registry) register(name, help, typ string, labels []Label) *collector {
	if !validName.MatchString(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	sig := signature(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, series: make(map[string]*collector)}
		r.families[name] = f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("metrics: %s already registered as %s, not %s", name, f.typ, typ))
	}
	c := f.series[sig]
	if c == nil {
		c = &collector{signature: sig}
		switch typ {
		case "counter":
			c.counter = &Counter{}
		case "gauge":
			c.gauge = &Gauge{}
		case "histogram":
			c.histogram = newHistogram()
		}
		f.series[sig] = c
	}
	return c
}

// Counter returns the counter registered under name and labels, creating
// it on first use. Counter names end in `_total` by convention (enforced
// by the spaavet metricname analyzer).
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.register(name, help, "counter", labels).counter
}

// Gauge returns the gauge registered under name and labels.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.register(name, help, "gauge", labels).gauge
}

// Histogram returns the log-bucketed histogram registered under name and
// labels (bucket bounds are powers of two; see histogram.go).
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	return r.register(name, help, "histogram", labels).histogram
}

// WritePrometheus renders every registered family in Prometheus text
// exposition format (version 0.0.4): `# HELP` / `# TYPE` headers,
// families sorted by name, series within a family sorted by label
// signature, histogram buckets cumulative with an explicit `+Inf`. The
// output is deterministic for a given registry state, so scrapes can be
// diffed and golden-tested.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	//lint:deterministic family names are sorted below before rendering
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, name := range names {
		fams[i] = r.families[name]
	}
	r.mu.RUnlock()

	for _, f := range fams {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		sigs := make([]string, 0, len(f.series))
		//lint:deterministic label signatures are sorted below before rendering
		for sig := range f.series {
			sigs = append(sigs, sig)
		}
		sort.Strings(sigs)
		for _, sig := range sigs {
			if err := writeSeries(w, f, f.series[sig]); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, f *family, c *collector) error {
	switch {
	case c.counter != nil:
		_, err := fmt.Fprintf(w, "%s %d\n", seriesName(f.name, c.signature, ""), c.counter.Value())
		return err
	case c.gauge != nil:
		_, err := fmt.Fprintf(w, "%s %d\n", seriesName(f.name, c.signature, ""), c.gauge.Value())
		return err
	case c.histogram != nil:
		return c.histogram.write(w, f.name, c.signature)
	}
	return nil
}

// seriesName renders name{labels} with an optional extra label (the
// histogram `le` bound) appended last, matching Prometheus convention.
func seriesName(name, sig, extra string) string {
	if sig == "" && extra == "" {
		return name
	}
	inner := sig
	if extra != "" {
		if inner != "" {
			inner += ","
		}
		inner += extra
	}
	return name + "{" + inner + "}"
}

// Handler returns an http.Handler serving the registry in exposition
// format — the /metrics endpoint of `spaabench serve`.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		// The scrape is a point-in-time snapshot; errors here mean the
		// client hung up, which needs no handling.
		_ = r.WritePrometheus(w)
	})
}
