package metrics

import (
	"encoding/json"
	"errors"
	"fmt"
	"mime"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/telemetry"
	"repro/internal/trace"
)

// maxTraceLog bounds the server's retained trace log: the collector's
// ring overwrites oldest-first, so the server keeps its own bounded copy
// of flushed traces for /traces and the dashboard waterfall.
const maxTraceLog = 512

// maxRunIndex bounds the in-memory run index; older summaries fall off
// the front while the aggregate totals keep counting, so a long soak
// cannot grow the daemon without bound.
const maxRunIndex = 4096

// maxManifestBytes caps a POST /runs body: a manifest is a bounded
// summary document, never tens of megabytes, so anything larger is a
// client bug or abuse and is answered 413 before it is read.
const maxManifestBytes = 32 << 20

// RunSummary is the per-run record the server keeps (and streams over
// /events) for every ingested manifest: the headline cost measures, not
// the full series.
type RunSummary struct {
	Seq     int64  `json:"seq"`
	Tool    string `json:"tool,omitempty"`
	Command string `json:"command"`

	Spikes             int64 `json:"spikes"`
	Deliveries         int64 `json:"deliveries"`
	Steps              int64 `json:"steps"`
	MaxQueueDepth      int64 `json:"max_queue_depth"`
	SilentStepsSkipped int64 `json:"silent_steps_skipped"`

	WallMS float64 `json:"wall_ms"`

	// StepsPerSec and DeliveriesPerSec come from the manifest's
	// spaa-perf/v1 section when present (zero otherwise, including for
	// deterministic runs, whose perf wall data is zeroed by design).
	StepsPerSec      float64 `json:"steps_per_sec"`
	DeliveriesPerSec float64 `json:"deliveries_per_sec"`

	// Quantiles are the server's current p50/p90/p99 estimates of per-run
	// wall time (ms), refreshed on every ingest so the dashboard can show
	// latency percentiles without parsing histogram buckets.
	WallP50 float64 `json:"wall_p50"`
	WallP90 float64 `json:"wall_p90"`
	WallP99 float64 `json:"wall_p99"`

	// Energy headline figures from the manifest's spaa-energy/v1 section
	// when present: the classic comparator total, the spiking total on
	// the reference platform, and the best advantage across platforms
	// (milli-x; 0 means the run carried no energy section or no
	// published tariff).
	ClassicMilliPJ       int64 `json:"classic_millipj,omitempty"`
	SpikingMilliPJ       int64 `json:"spiking_millipj,omitempty"`
	EnergyAdvantageMilli int64 `json:"energy_advantage_milli,omitempty"`
}

// Totals aggregates every ingested run (including runs already evicted
// from the bounded index).
type Totals struct {
	Runs               int64 `json:"runs"`
	Spikes             int64 `json:"spikes"`
	Deliveries         int64 `json:"deliveries"`
	Steps              int64 `json:"steps"`
	SilentStepsSkipped int64 `json:"silent_steps_skipped"`
}

// Server is the live-metrics daemon behind `spaabench serve`: it owns a
// Registry, ingests spaa-run-manifest/v1 documents over POST /runs,
// folds their cost measures into the registry's canonical families (the
// same ones Bridge writes, so in-process and pushed runs scrape
// identically), and fans per-run summaries out to SSE subscribers.
type Server struct {
	reg *Registry

	// bridge carries the pre-resolved canonical collectors; ingest
	// reuses its ObservePerf fold so pushed spaa-perf/v1 sections land
	// in the same throughput families an in-process Bridge writes.
	bridge *Bridge
	// runtime samples Go process health (goroutines, heap, GC pauses)
	// at the top of every /metrics scrape.
	runtime *RuntimeCollector

	runsIngested *Counter
	badRequests  *Counter
	wallHist     *Histogram
	runSpikes    *Histogram

	mu       sync.Mutex
	seq      int64                    // guarded by mu
	runs     []RunSummary             // guarded by mu
	totals   Totals                   // guarded by mu
	subs     map[chan []byte]struct{} // guarded by mu
	traceLog []*trace.Trace           // guarded by mu

	// queries, when set via AttachQueries before Handler, serves the
	// /query/ subtree (the resilience layer's endpoints).
	queries http.Handler
	// traceSrc, when set via AttachTraces, supplies live sampler counters
	// to GET /traces alongside the retained log.
	traceSrc *trace.Collector

	started time.Time // set once in NewServer, read-only afterwards
}

// AttachQueries mounts h on the /query/ subtree of Handler. The service
// layer lives in a package that imports metrics (for its spaa_service_*
// families), so the server takes it as an opaque handler rather than
// depending on it. Call before Handler.
func (s *Server) AttachQueries(h http.Handler) { s.queries = h }

// AttachTraces wires a live span collector into the server: a background
// flusher drains newly sampled traces into the bounded retained log
// every interval, and GET /traces serves the log plus the collector's
// sampler counters. The returned stop function performs a final drain
// and joins the flusher goroutine — call it on shutdown (the
// goroutine-leak test's contract). Call before Handler.
func (s *Server) AttachTraces(c *trace.Collector, interval time.Duration) (stop func()) {
	s.traceSrc = c
	return c.StartFlusher(interval, s.addTraces)
}

// addTraces appends a flushed batch to the bounded retained log.
func (s *Server) addTraces(batch []*trace.Trace) {
	s.mu.Lock()
	s.traceLog = append(s.traceLog, batch...)
	if len(s.traceLog) > maxTraceLog {
		s.traceLog = s.traceLog[len(s.traceLog)-maxTraceLog:]
	}
	s.mu.Unlock()
}

// NewServer returns a server folding ingested runs into reg.
func NewServer(reg *Registry) *Server {
	return &Server{
		reg:          reg,
		bridge:       NewBridge(reg),
		runtime:      NewRuntimeCollector(reg),
		runsIngested: reg.Counter("spaa_runs_ingested_total", "run manifests accepted over POST /runs"),
		badRequests:  reg.Counter("spaa_ingest_errors_total", "rejected ingest requests"),
		wallHist:     reg.Histogram("spaa_run_wall_ms", "per-run wall time in milliseconds"),
		runSpikes:    reg.Histogram("spaa_run_spikes", "per-run spike totals"),
		subs:         make(map[chan []byte]struct{}),
		//lint:wallclock daemon start time is operational uptime, not simulated time
		started: time.Now(),
	}
}

// Registry returns the server's registry (the /metrics source).
func (s *Server) Registry() *Registry { return s.reg }

// Ingest folds one run manifest into the registry and run index and
// returns the summary broadcast to /events subscribers. Safe for
// concurrent use.
func (s *Server) Ingest(m *telemetry.Manifest) RunSummary {
	sum := RunSummary{Tool: m.Tool, Command: m.Command, WallMS: m.WallMS}
	if m.Perf != nil {
		sum.StepsPerSec = m.Perf.StepsPerSec
		sum.DeliveriesPerSec = m.Perf.DeliveriesPerSec
	}
	if m.Energy != nil {
		sum.ClassicMilliPJ = m.Energy.ClassicMilliPJ
		sum.SpikingMilliPJ = m.Energy.ReferenceMilliPJ()
		sum.EnergyAdvantageMilli = m.Energy.BestAdvantageMilli()
	}
	if m.Stats != nil {
		sum.Spikes = m.Stats.Spikes
		sum.Deliveries = m.Stats.Deliveries
		sum.Steps = m.Stats.Steps
		sum.MaxQueueDepth = m.Stats.MaxQueueDepth
		sum.SilentStepsSkipped = m.Stats.SilentStepsSkipped
	}
	s.foldRegistry(m, &sum)
	if m.Trace != nil {
		// Pushed spaa-trace/v1 sections land in the same spaa_trace_*
		// families the live service writes, and their sampled traces join
		// the retained log behind /traces.
		FoldTrace(s.reg, m.Trace)
		s.addTraces(m.Trace.Traces)
	}

	s.mu.Lock()
	s.seq++
	sum.Seq = s.seq
	sum.WallP50 = s.wallHist.Quantile(0.50)
	sum.WallP90 = s.wallHist.Quantile(0.90)
	sum.WallP99 = s.wallHist.Quantile(0.99)
	s.totals.Runs++
	s.totals.Spikes += sum.Spikes
	s.totals.Deliveries += sum.Deliveries
	s.totals.Steps += sum.Steps
	s.totals.SilentStepsSkipped += sum.SilentStepsSkipped
	s.runs = append(s.runs, sum)
	if len(s.runs) > maxRunIndex {
		s.runs = s.runs[len(s.runs)-maxRunIndex:]
	}
	payload, _ := json.Marshal(sum)
	//lint:deterministic broadcast order across subscribers is immaterial
	for ch := range s.subs {
		// Non-blocking: a stalled subscriber drops events rather than
		// stalling ingestion.
		select {
		case ch <- payload:
		default:
		}
	}
	s.mu.Unlock()
	return sum
}

// foldRegistry maps a manifest's stats and counters onto the canonical
// metric families Bridge writes, plus the server-side per-run
// histograms.
func (s *Server) foldRegistry(m *telemetry.Manifest, sum *RunSummary) {
	command := m.Command
	if command == "" {
		command = "unknown"
	}
	s.runsIngested.Inc()
	s.reg.Counter("spaa_runs_total", "ingested runs by workload", Label{Key: "workload", Value: command}).Inc()
	s.wallHist.Observe(int64(m.WallMS))

	if m.Stats != nil {
		s.reg.Counter(MetricSpikes, "total neuron firings").Add(m.Stats.Spikes)
		s.reg.Counter(MetricDeliveries, "total synaptic deliveries (energy proxy)").Add(m.Stats.Deliveries)
		s.reg.Counter(MetricSteps, "non-silent simulated steps processed").Add(m.Stats.Steps)
		s.reg.Gauge(MetricQueueDepth, "high-water mark of the pending event queue").SetMax(m.Stats.MaxQueueDepth)
		s.reg.Gauge(MetricSilentSteps, "simulated steps skipped by the silence optimization").Add(m.Stats.SilentStepsSkipped)
		s.runSpikes.Observe(m.Stats.Spikes)
	}
	// The perf and energy sections fold through the same paths an
	// in-process Bridge uses, so pushed and probed runs populate
	// identical families.
	s.bridge.ObservePerf(m.Perf)
	s.bridge.ObserveEnergy(m.Energy)
	// Manifest counters carry the non-snn cost measures; map the known
	// families onto their canonical series.
	for _, kv := range sortedCounters(m.Counters) {
		switch kv.k {
		case "congest_messages":
			s.reg.Counter(MetricCongestMsgs, "CONGEST messages exchanged").Add(kv.v)
		case "congest_bits":
			s.reg.Counter(MetricCongestBits, "CONGEST bits exchanged").Add(kv.v)
		case "distance_movement":
			s.reg.Counter(MetricDistanceL1, "accumulated l1 data movement").Add(kv.v)
		case "fleet_intra":
			s.reg.Counter(MetricFleetDeliver, "chip-level spike deliveries", Label{Key: "route", Value: "intra"}).Add(kv.v)
		case "fleet_inter":
			s.reg.Counter(MetricFleetDeliver, "chip-level spike deliveries", Label{Key: "route", Value: "inter"}).Add(kv.v)
		default:
			if kind, ok := strings.CutPrefix(kv.k, "distance_"); ok && strings.HasSuffix(kind, "s") {
				kind = strings.TrimSuffix(kind, "s")
				if kind == "load" || kind == "store" || kind == "op" {
					s.reg.Counter(MetricDistanceOps, "DISTANCE-machine primitives", Label{Key: "kind", Value: kind}).Add(kv.v)
				}
			}
		}
	}
}

type counterKV struct {
	k string
	v int64
}

// sortedCounters returns the manifest counters in deterministic order
// (registration order inside foldRegistry must not depend on map
// iteration).
func sortedCounters(m map[string]int64) []counterKV {
	if len(m) == 0 {
		return nil
	}
	out := make([]counterKV, 0, len(m))
	//lint:deterministic keys are sorted below before use
	for k, v := range m {
		out = append(out, counterKV{k, v})
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].k < out[j-1].k; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Handler returns the daemon's full route table:
//
//	GET  /         single-file live dashboard
//	GET  /metrics  Prometheus text exposition of the registry
//	GET  /healthz  liveness JSON (uptime, run count)
//	GET  /runs     JSON index of ingested run summaries + totals
//	POST /runs     ingest one spaa-run-manifest/v1 document
//	GET  /traces   JSON log of tail-sampled query traces (spans inline)
//	GET  /events   SSE stream of per-run summaries (event: run)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleDashboard)
	scrape := s.reg.Handler()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		s.runtime.Update() // sample process health at scrape time
		scrape.ServeHTTP(w, req)
	})
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/runs", s.handleRuns)
	mux.HandleFunc("/traces", s.handleTraces)
	mux.HandleFunc("/events", s.handleEvents)
	if s.queries != nil {
		mux.Handle("/query/", s.queries)
	}
	return mux
}

// subscriberCount reports the live /events subscriber count (test hook
// for the disconnect-teardown leak test).
func (s *Server) subscriberCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.subs)
}

// ingestContentTypeOK accepts application/json (with optional
// parameters) on POST /runs.
func ingestContentTypeOK(ct string) bool {
	mt, _, err := mime.ParseMediaType(ct)
	if err != nil {
		return false
	}
	return mt == "application/json"
}

func (s *Server) handleDashboard(w http.ResponseWriter, req *http.Request) {
	if req.URL.Path != "/" {
		http.NotFound(w, req)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, dashboardHTML)
}

func (s *Server) handleHealthz(w http.ResponseWriter, req *http.Request) {
	s.mu.Lock()
	runs := s.totals.Runs
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"ok": true,
		//lint:wallclock uptime reporting is operational telemetry, not simulated time
		"uptime_ms": time.Since(s.started).Milliseconds(),
		"runs":      runs,
	})
}

// runsResponse is the GET /runs document.
type runsResponse struct {
	Totals Totals       `json:"totals"`
	Count  int          `json:"count"`
	Runs   []RunSummary `json:"runs"`
}

func (s *Server) handleRuns(w http.ResponseWriter, req *http.Request) {
	switch req.Method {
	case http.MethodGet:
		s.mu.Lock()
		resp := runsResponse{
			Totals: s.totals,
			Count:  len(s.runs),
			Runs:   append([]RunSummary(nil), s.runs...),
		}
		s.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(resp)
	case http.MethodPost:
		if !ingestContentTypeOK(req.Header.Get("Content-Type")) {
			s.badRequests.Inc()
			http.Error(w, fmt.Sprintf("unsupported Content-Type %q (want application/json)",
				req.Header.Get("Content-Type")), http.StatusUnsupportedMediaType)
			return
		}
		man, err := telemetry.ReadManifest(http.MaxBytesReader(w, req.Body, maxManifestBytes))
		if err != nil {
			s.badRequests.Inc()
			var tooLarge *http.MaxBytesError
			if errors.As(err, &tooLarge) {
				http.Error(w, fmt.Sprintf("manifest exceeds the %d-byte ingest cap", tooLarge.Limit),
					http.StatusRequestEntityTooLarge)
				return
			}
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		sum := s.Ingest(man)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(sum)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// tracesResponse is the GET /traces document: the collector's live
// sampler counters (zero when no collector is attached) plus the
// retained tail-sampled traces, oldest first.
type tracesResponse struct {
	Started int64          `json:"started"`
	Sampled int64          `json:"sampled"`
	Dropped int64          `json:"dropped"`
	Evicted int64          `json:"evicted"`
	Count   int            `json:"count"`
	Traces  []*trace.Trace `json:"traces"`
}

func (s *Server) handleTraces(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var resp tracesResponse
	if s.traceSrc != nil {
		// Drain anything sampled since the last flusher tick so /traces
		// is read-your-writes for sequential clients.
		s.traceSrc.FlushNew(s.addTraces)
		resp.Started, resp.Sampled, resp.Dropped, resp.Evicted, _ = s.traceSrc.Counters()
	}
	s.mu.Lock()
	resp.Traces = append([]*trace.Trace(nil), s.traceLog...)
	s.mu.Unlock()
	resp.Count = len(resp.Traces)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// handleEvents serves the SSE stream: a `hello` event with current
// totals, then one `run` event per ingested manifest.
func (s *Server) handleEvents(w http.ResponseWriter, req *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")

	ch := make(chan []byte, 64)
	s.mu.Lock()
	s.subs[ch] = struct{}{}
	hello, _ := json.Marshal(s.totals)
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.subs, ch)
		s.mu.Unlock()
	}()

	fmt.Fprintf(w, "event: hello\ndata: %s\n\n", hello)
	fl.Flush()

	heartbeat := time.NewTicker(15 * time.Second)
	defer heartbeat.Stop()
	for {
		select {
		case <-req.Context().Done():
			return
		case payload := <-ch:
			fmt.Fprintf(w, "event: run\ndata: %s\n\n", payload)
			fl.Flush()
		case <-heartbeat.C:
			fmt.Fprint(w, ": keepalive\n\n")
			fl.Flush()
		}
	}
}
