package metrics

import (
	"testing"

	"repro/internal/congest"
	"repro/internal/core"
	"repro/internal/distance"
	"repro/internal/fleet"
	"repro/internal/graph"
	"repro/internal/snn"
)

// Compile-time checks: Bridge satisfies every probe interface of the
// engine fabric (structurally — no engine package imports metrics).
var (
	_ snn.StepProbe  = (*Bridge)(nil)
	_ distance.Probe = (*Bridge)(nil)
	_ congest.Probe  = (*Bridge)(nil)
	_ fleet.Probe    = (*Bridge)(nil)
)

func TestBridgeCounts(t *testing.T) {
	reg := NewRegistry()
	b := NewBridge(reg)

	b.OnStep(1, 3, 7, 5, 11)
	b.OnStep(2, 1, 2, 3, 4)
	if got := reg.Counter(MetricSpikes, "").Value(); got != 4 {
		t.Errorf("spikes = %d, want 4", got)
	}
	if got := reg.Counter(MetricDeliveries, "").Value(); got != 9 {
		t.Errorf("deliveries = %d, want 9", got)
	}
	if got := reg.Counter(MetricSteps, "").Value(); got != 2 {
		t.Errorf("steps = %d, want 2", got)
	}
	if got := reg.Gauge(MetricQueueDepth, "").Value(); got != 11 {
		t.Errorf("queue depth high water = %d, want 11", got)
	}

	b.OnDistanceOp(distance.KindLoad, 10)
	b.OnDistanceOp(distance.KindStore, 5)
	b.OnDistanceOp(distance.KindOp, 0)
	b.OnDistanceOp(distance.OpKind(99), 1) // unknown kind folds into "op"
	if got := reg.Counter(MetricDistanceL1, "").Value(); got != 16 {
		t.Errorf("l1 movement = %d, want 16", got)
	}
	if got := reg.Counter(MetricDistanceOps, "", Label{Key: "kind", Value: "op"}).Value(); got != 2 {
		t.Errorf("op-kind count = %d, want 2", got)
	}

	b.OnCongestRound(0, 40, 320)
	b.OnCongestRound(1, 10, 80)
	if got := reg.Counter(MetricCongestBits, "").Value(); got != 400 {
		t.Errorf("congest bits = %d, want 400", got)
	}
	if got := reg.Counter(MetricCongestRnds, "").Value(); got != 2 {
		t.Errorf("congest rounds = %d, want 2", got)
	}

	b.OnFleetDelivery(0, 1, 1)
	b.OnFleetDelivery(0, 1, 2)
	b.OnFleetDelivery(0, 2, 1)
	if got := reg.Counter(MetricFleetDeliver, "", Label{Key: "route", Value: "intra"}).Value(); got != 1 {
		t.Errorf("intra = %d, want 1", got)
	}
	if got := reg.Counter(MetricFleetDeliver, "", Label{Key: "route", Value: "inter"}).Value(); got != 2 {
		t.Errorf("inter = %d, want 2", got)
	}

	b.ObserveRunStats(37, 12)
	b.ObserveRunStats(20, 8)
	if got := reg.Gauge(MetricQueueDepth, "").Value(); got != 37 {
		t.Errorf("run-stats queue depth = %d, want 37", got)
	}
	if got := reg.Gauge(MetricSilentSteps, "").Value(); got != 20 {
		t.Errorf("silent steps = %d, want 20", got)
	}
}

// TestNilBridgeSafe exercises every probe method on a nil *Bridge — the
// uninstrumented path must be a no-op, not a panic.
func TestNilBridgeSafe(t *testing.T) {
	var b *Bridge
	b.OnStep(0, 1, 2, 3, 4)
	b.OnDistanceOp(distance.KindLoad, 1)
	b.OnCongestRound(0, 1, 8)
	b.OnFleetDelivery(0, 0, 1)
	b.ObserveRunStats(1, 1)
}

// TestBridgeZeroAlloc pins the probe contract: no allocations per event
// on any callback path.
func TestBridgeZeroAlloc(t *testing.T) {
	b := NewBridge(NewRegistry())
	if n := testing.AllocsPerRun(100, func() { b.OnStep(1, 2, 3, 4, 5) }); n != 0 {
		t.Errorf("OnStep allocates %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() { b.OnDistanceOp(distance.KindLoad, 3) }); n != 0 {
		t.Errorf("OnDistanceOp allocates %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() { b.OnCongestRound(1, 2, 16) }); n != 0 {
		t.Errorf("OnCongestRound allocates %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() { b.OnFleetDelivery(1, 0, 1) }); n != 0 {
		t.Errorf("OnFleetDelivery allocates %.1f/op, want 0", n)
	}
}

// TestBridgeMatchesEngineStats runs the spiking SSSP once uninstrumented
// and once through a bridge; the scraped counters must equal the
// engine's own aggregate stats.
func TestBridgeMatchesEngineStats(t *testing.T) {
	g := graph.RandomGnm(128, 512, graph.Uniform(8), 7, true)
	bare, err := core.SSSP(g, 0, -1)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	b := NewBridge(reg)
	probed, err := core.SSSP(g, 0, -1, b)
	if err != nil {
		t.Fatal(err)
	}
	if probed.Stats.Spikes != bare.Stats.Spikes {
		t.Fatalf("probed run diverged: %d spikes vs %d", probed.Stats.Spikes, bare.Stats.Spikes)
	}
	if got := reg.Counter(MetricSpikes, "").Value(); got != bare.Stats.Spikes {
		t.Errorf("bridge spikes = %d, engine says %d", got, bare.Stats.Spikes)
	}
	if got := reg.Counter(MetricDeliveries, "").Value(); got != bare.Stats.Deliveries {
		t.Errorf("bridge deliveries = %d, engine says %d", got, bare.Stats.Deliveries)
	}
	if got := reg.Counter(MetricSteps, "").Value(); got != bare.Stats.Steps {
		t.Errorf("bridge steps = %d, engine says %d", got, bare.Stats.Steps)
	}
}

// BenchmarkEngineBridgeOverhead guards the acceptance bound: the nil
// *Bridge path must match the uninstrumented engine's allocs/op (a nil
// probe is one branch), and the live path must stay allocation-flat per
// run despite feeding the registry every step.
func BenchmarkEngineBridgeOverhead(b *testing.B) {
	g := graph.RandomGnm(1024, 4096, graph.Uniform(8), 42, true)
	run := func(b *testing.B, probes ...snn.StepProbe) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.SSSP(g, 0, -1, probes...); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("uninstrumented", func(b *testing.B) { run(b) })
	b.Run("nil-bridge", func(b *testing.B) {
		var nb *Bridge
		run(b, nb)
	})
	b.Run("live-bridge", func(b *testing.B) {
		run(b, NewBridge(NewRegistry()))
	})
}
