package repro

import (
	"repro/internal/circuit"
	"repro/internal/cost"
	"repro/internal/distance"
	"repro/internal/harness"
	"repro/internal/nga"
	"repro/internal/platform"
	"repro/internal/snn"
)

// --- Spiking neural network simulator (Definitions 1-3) ---

// Network is a discrete-time LIF spiking neural network.
type Network = snn.Network

// Neuron holds the programmable parameters (reset, threshold, decay).
type Neuron = snn.Neuron

// NetworkConfig controls fire rule and spike recording.
type NetworkConfig = snn.Config

// FireRule selects the threshold comparison (>= or strict >).
type FireRule = snn.FireRule

// Fire rules: FireGTE is used by all the paper's circuits; FireStrict is
// Definition 2 verbatim.
const (
	FireGTE    = snn.FireGTE
	FireStrict = snn.FireStrict
)

// NetworkStats aggregates spikes, synaptic deliveries, and steps.
type NetworkStats = snn.Stats

// NewNetwork returns an empty LIF network.
func NewNetwork(cfg NetworkConfig) *Network { return snn.NewNetwork(cfg) }

// GateNeuron returns a memoryless threshold-gate neuron (full decay).
func GateNeuron(threshold float64) Neuron { return snn.Gate(threshold) }

// IntegratorNeuron returns a no-leak accumulator neuron (zero decay).
func IntegratorNeuron(threshold float64) Neuron { return snn.Integrator(threshold) }

// --- Threshold circuits (Section 5) ---

// CircuitBuilder allocates the paper's threshold circuits in one network.
type CircuitBuilder = circuit.Builder

// NewCircuitBuilder returns a builder; record enables output readout.
func NewCircuitBuilder(record bool) *CircuitBuilder { return circuit.NewBuilder(record) }

// Num is a bundle of neurons encoding an unsigned integer, LSB first.
type Num = circuit.Num

// CircuitStats reports neurons, synapses, and latency of a construction.
type CircuitStats = circuit.Stats

// MaxWiredOR is the O(dλ)-neuron, O(λ)-depth max circuit (Theorem 5.1).
type MaxWiredOR = circuit.MaxWiredOR

// NewMaxWiredOR builds the bit-by-bit max circuit of Figure 3.
func NewMaxWiredOR(b *CircuitBuilder, d, lambda int) *MaxWiredOR {
	return circuit.NewMaxWiredOR(b, d, lambda)
}

// MinWiredOR is the complement-based min variant of Theorem 5.1.
type MinWiredOR = circuit.MinWiredOR

// NewMinWiredOR builds the wired-or minimum circuit.
func NewMinWiredOR(b *CircuitBuilder, d, lambda int) *MinWiredOR {
	return circuit.NewMinWiredOR(b, d, lambda)
}

// MaxBruteForce is the O(d²)-neuron, depth-3 max circuit (Theorem 5.2).
type MaxBruteForce = circuit.MaxBruteForce

// NewMaxBruteForce builds the Figure 5 circuit; minimize flips it to min.
func NewMaxBruteForce(b *CircuitBuilder, d, lambda int, minimize bool) *MaxBruteForce {
	return circuit.NewMaxBruteForce(b, d, lambda, minimize)
}

// Comparator is the single-neuron x-vs-y comparison of Figure 5A.
type Comparator = circuit.Comparator

// NewComparator builds a λ-bit comparator (x >= y, or x > y if strict).
func NewComparator(b *CircuitBuilder, lambda int, strict bool) *Comparator {
	return circuit.NewComparator(b, lambda, strict)
}

// AdderCLA is the depth-2, O(λ)-neuron carry-lookahead adder (Figure 4).
type AdderCLA = circuit.AdderCLA

// NewAdderCLA builds the exponential-weight adder.
func NewAdderCLA(b *CircuitBuilder, lambda int) *AdderCLA { return circuit.NewAdderCLA(b, lambda) }

// AdderSmallWeight is the O(λ²)-neuron small-weight adder.
type AdderSmallWeight = circuit.AdderSmallWeight

// NewAdderSmallWeight builds the generate/propagate adder.
func NewAdderSmallWeight(b *CircuitBuilder, lambda int) *AdderSmallWeight {
	return circuit.NewAdderSmallWeight(b, lambda)
}

// AddConst adds a hardwired constant (the per-edge length adder of §4.2).
type AddConst = circuit.AddConst

// NewAddConst builds the add-constant circuit.
func NewAddConst(b *CircuitBuilder, lambda int, c uint64) *AddConst {
	return circuit.NewAddConst(b, lambda, c)
}

// Decrement is the subtract-one circuit of the TTL algorithm (§4.1).
type Decrement = circuit.Decrement

// NewDecrement builds the subtract-one circuit.
func NewDecrement(b *CircuitBuilder, lambda int) *Decrement { return circuit.NewDecrement(b, lambda) }

// Latch is the one-bit memory of Figure 1B.
type Latch = circuit.Latch

// NewLatch builds a set/recall/reset memory latch.
func NewLatch(b *CircuitBuilder) *Latch { return circuit.NewLatch(b) }

// DelayGadget simulates a delay-d synapse with two neurons (Figure 1A).
type DelayGadget = circuit.DelayGadget

// NewDelayGadget builds the delay gadget for d >= 2.
func NewDelayGadget(b *CircuitBuilder, d int64) *DelayGadget { return circuit.NewDelayGadget(b, d) }

// --- NGA round framework (Definition 4) ---

// NGA is a round-based neuromorphic graph algorithm over messages M.
type NGA[M any] = nga.Algorithm[M]

// NGAResult reports messages, rounds, and Definition 4 execution time.
type NGAResult[M any] = nga.Result[M]

// MatVecNGA builds the A^r·x matrix-vector NGA of Section 2.2.
func MatVecNGA(g *Graph, lambda int) *NGA[int64] { return nga.MatVec(g, lambda) }

// MatVecPower computes A^r·x through r NGA rounds.
func MatVecPower(g *Graph, x []int64, r, lambda int) []int64 {
	return nga.MatVecPower(g, x, r, lambda)
}

// MinPlusNGA builds the tropical-semiring NGA (edges add, nodes min).
func MinPlusNGA(g *Graph, lambda int) *NGA[int64] { return nga.MinPlus(g, lambda) }

// --- DISTANCE model (Definition 5, Section 6) ---

// DistanceMachine is the instrumented 2D-lattice memory with c registers.
type DistanceMachine = distance.Machine

// RegisterPlacement selects where the registers sit.
type RegisterPlacement = distance.Placement

// Register placements.
const (
	RegistersSpread    = distance.Spread
	RegistersClustered = distance.Clustered
)

// NewDistanceMachine builds a machine holding totalWords with c registers.
func NewDistanceMachine(totalWords, c int, p RegisterPlacement) *DistanceMachine {
	return distance.NewMachine(totalWords, c, p)
}

// ScanInputMovement measures the movement cost of reading an m-word input
// (the Theorem 6.1 quantity).
func ScanInputMovement(words, c int, p RegisterPlacement) int64 {
	return distance.ScanInput(words, c, p)
}

// DistanceDijkstra runs movement-instrumented Dijkstra.
func DistanceDijkstra(g *Graph, src, c int, p RegisterPlacement) *distance.DijkstraResult {
	return distance.Dijkstra(g, src, c, p)
}

// DistanceBellmanFordKHop runs movement-instrumented k-hop Bellman-Ford
// (the Theorem 6.2 algorithm).
func DistanceBellmanFordKHop(g *Graph, src, k, c int, p RegisterPlacement) *distance.BFResult {
	return distance.BellmanFordKHop(g, src, k, c, p)
}

// MatVecMovement measures dense matrix-vector movement cost (the §2.3
// O(n²) → Θ(n³) observation).
func MatVecMovement(n, c int, p RegisterPlacement) int64 {
	return distance.MatVecMovement(n, c, p)
}

// ScanLowerBound is Theorem 6.1's m^{3/2}/(8√c) with explicit constant.
func ScanLowerBound(m, c int) float64 { return distance.ScanLowerBound(m, c) }

// KHopLowerBound is Theorem 6.2's k·m^{3/2}/(8√c).
func KHopLowerBound(m, c, k int) float64 { return distance.KHopLowerBound(m, c, k) }

// --- Cost model (Table 1) and platforms (Table 3) ---

// CostParams carries the Table 1 problem parameters.
type CostParams = cost.Params

// CostRow is one evaluated Table 1 line.
type CostRow = cost.Row

// Table1 evaluates all eight Table 1 rows at concrete parameters.
func Table1(p CostParams) []CostRow { return cost.Table1(p) }

// Platform is one column of the Table 3 platform survey.
type Platform = platform.Platform

// Table3 returns the platform survey data.
func Table3() []Platform { return platform.Table3() }

// RenderTable3 formats Table 3 for terminal output.
func RenderTable3() string { return platform.Render() }

// --- Experiment harness ---

// Table1Config parameterizes the Table 1 reproduction sweep.
type Table1Config = harness.Table1Config

// Table1Report is the measured sweep.
type Table1Report = harness.Table1Report

// RunTable1 measures conventional vs spiking costs across a sweep.
func RunTable1(cfg Table1Config) *Table1Report { return harness.RunTable1(cfg) }

// RunTable2 measures the max-circuit constructions over a (d, λ) grid.
func RunTable2(ds, lambdas []int) []harness.Table2Row { return harness.RunTable2(ds, lambdas) }

// RunFigures executes the figure-level demonstrations (Figures 1-5 and
// the compiled gate-level k-hop run) and returns a narrative report.
func RunFigures() string { return harness.RunFigures() }

// AdderRipple is the chained-parity ripple adder of Section 4.1's
// decrement discussion: unit weights, O(λ) neurons, O(λ) depth.
type AdderRipple = circuit.AdderRipple

// NewAdderRipple builds the chained-parity adder.
func NewAdderRipple(b *CircuitBuilder, lambda int) *AdderRipple {
	return circuit.NewAdderRipple(b, lambda)
}

// MulConst multiplies a λ-bit input by a hardwired constant via
// shift-and-add adder trees (the integer-matrix upgrade of §2.2).
type MulConst = circuit.MulConst

// NewMulConst builds the constant multiplier.
func NewMulConst(b *CircuitBuilder, lambda int, c uint64) *MulConst {
	return circuit.NewMulConst(b, lambda, c)
}
