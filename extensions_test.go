package repro

import (
	"testing"
)

func TestFacadeMultiDst(t *testing.T) {
	g := PathGraph(6, Unit, 0)
	r := SpikingSSSPMulti(g, 0, []int{3, 4})
	if r.SpikeTime != 4 || r.Dist[3] != 3 {
		t.Fatalf("multi-dst: %d / %v", r.SpikeTime, r.Dist[:5])
	}
}

func TestFacadeLatchPath(t *testing.T) {
	g := PathGraph(5, Uniform(9), 3)
	r := SpikingSSSPWithLatches(g, 0)
	p, err := r.Path(4)
	if err != nil || len(p) != 5 {
		t.Fatalf("latch path %v %v", p, err)
	}
}

func TestFacadeCompiledPoly(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, 1, 2)
	g.AddEdge(1, 2, 3)
	g.AddEdge(0, 2, 9)
	cp := CompileKHopPolySSSP(g, 0, 2)
	dist, _ := cp.Run()
	if dist[2] != 5 {
		t.Fatalf("compiled poly dist %d, want 5", dist[2])
	}
}

func TestFacadeCongest(t *testing.T) {
	g := RandomGraph(25, 100, Uniform(5), 2)
	hops, _ := CongestBFS(g, 0)
	want := g.HopDist(0)
	for v := range want {
		if hops[v] != want[v] {
			t.Fatalf("congest bfs mismatch at %d", v)
		}
	}
	dist, res := CongestSSSP(g, 0, g.N())
	ref := Dijkstra(g, 0)
	for v := range dist {
		if dist[v] != ref.Dist[v] {
			t.Fatalf("congest sssp mismatch at %d", v)
		}
	}
	if res.MaxMessageBits > 64 {
		t.Fatalf("message width %d", res.MaxMessageBits)
	}
}

func TestFacadeSNNToCongest(t *testing.T) {
	net := NewNetwork(NetworkConfig{Record: true})
	a := net.AddNeuron(GateNeuron(1))
	b := net.AddNeuron(GateNeuron(1))
	net.Connect(a, b, 1, 4)
	net.InduceSpike(a, 0)
	r := SNNToCongest(net, 8)
	found := false
	for _, v := range r.Raster[4] {
		if v == b {
			found = true
		}
	}
	if !found || r.Relays != 3 {
		t.Fatalf("transpilation wrong: relays=%d raster=%v", r.Relays, r.Raster[:6])
	}
}

func TestFacadeFlow(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, 1, 3)
	g.AddEdge(0, 2, 2)
	g.AddEdge(1, 3, 2)
	g.AddEdge(2, 3, 3)
	want := int64(4)
	if got := DinicFlow(g, 0, 3); got != want {
		t.Fatalf("dinic %d", got)
	}
	if got := EdmondsKarpFlow(g, 0, 3); got != want {
		t.Fatalf("ek %d", got)
	}
	r := TidalFlow(g, 0, 3)
	if r.Value != want || r.FallbackAugments != 0 {
		t.Fatalf("tidal %+v", r)
	}
}

func TestFacade3DScanAndEnergy(t *testing.T) {
	got := ScanInput3DMovement(4096, 1, RegistersSpread)
	if float64(got) < Scan3DLowerBound(4096, 1) {
		t.Fatalf("3D scan below bound")
	}
	var loihi Platform
	for _, p := range Table3() {
		if p.Name == "Loihi" {
			loihi = p
		}
	}
	if adv := EnergyAdvantage(loihi, 10000, 10000); adv < 100 {
		t.Fatalf("energy advantage %v", adv)
	}
	if CPUEnergyJoules(0) != 0 || SpikeEnergyJoules(loihi, 0) != 0 {
		t.Fatal("zero-work energy nonzero")
	}
}
