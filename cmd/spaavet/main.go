// Command spaavet is the repository's static-analysis multichecker: it
// runs the ten internal/lint analyzers over Go packages and exits nonzero
// on any new finding. It is the compile-time half of the verification
// story — the runtime half is snn.Validate / `spaabench validate`, which
// checks constructed networks against the paper's Definition 1-2
// invariants. See docs/STATIC-ANALYSIS.md for the full suite, the
// annotation syntax, and the baseline workflow.
//
// Usage:
//
//	go run ./cmd/spaavet ./...                  # analyze the whole module
//	go run ./cmd/spaavet -tests ./...           # include _test.go files
//	go run ./cmd/spaavet -json ./...            # machine-readable output
//	go run ./cmd/spaavet -write-baseline ./...  # accept current findings
//	go run ./cmd/spaavet -facts facts.json ./...# export the fact store
//	go run ./cmd/spaavet help                   # describe the analyzers
//
// spaavet must run from inside the module (the stdlib source importer
// resolves module-local imports through the go command). Findings can be
// waived line-by-line with //lint:<analyzer> directives, or accepted
// wholesale into the committed spaavet.baseline: baselined findings are
// reported but do not fail the build, while any finding not in the
// baseline does. Parse or type-check failures are fatal (exit 2) — an
// analyzer verdict over a package that did not type-check is not a
// verdict.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
	"repro/internal/lint/load"
)

// defaultBaseline is the committed baseline consulted when -baseline is
// not given; absence of the file means an empty baseline.
const defaultBaseline = "spaavet.baseline"

func main() {
	tests := flag.Bool("tests", false, "also analyze _test.go files of each package")
	jsonOut := flag.Bool("json", false, "emit findings as JSON (spaavet-findings/v1)")
	baselinePath := flag.String("baseline", "", "baseline file of accepted findings (default: "+defaultBaseline+" if present; 'none' disables)")
	writeBaseline := flag.Bool("write-baseline", false, "write current findings to the baseline file and exit 0")
	factsOut := flag.String("facts", "", "write the serialized cross-package fact store to this file")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: spaavet [-tests] [-json] [-baseline file] [-write-baseline] [-facts file] [package patterns]")
		fmt.Fprintln(os.Stderr, "       spaavet help")
	}
	flag.Parse()
	args := flag.Args()
	if len(args) == 1 && args[0] == "help" {
		printHelp()
		return
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}

	pkgs, err := goList(args)
	if err != nil {
		fatal(err)
	}
	findings, facts, err := analyzeAll(pkgs, *tests)
	if err != nil {
		fatal(err)
	}
	if *factsOut != "" {
		data, err := facts.Export()
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*factsOut, data, 0o644); err != nil {
			fatal(err)
		}
	}

	path, required := baselineFile(*baselinePath)
	if *writeBaseline {
		if err := writeBaselineFile(path, findings); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "spaavet: wrote %d finding(s) to %s\n", len(findings), path)
		return
	}
	base, err := loadBaseline(path, required)
	if err != nil {
		fatal(err)
	}
	newCount, stale := applyBaseline(base, findings)

	if *jsonOut {
		if err := writeJSON(os.Stdout, findings, newCount, stale); err != nil {
			fatal(err)
		}
	} else {
		for _, f := range findings {
			suffix := ""
			if f.Baselined {
				suffix = " [baselined]"
			}
			fmt.Printf("%s%s\n", f, suffix)
		}
	}
	for _, s := range stale {
		fmt.Fprintf(os.Stderr, "spaavet: stale baseline entry (no longer found): %s\n", s)
	}
	if newCount > 0 {
		fmt.Fprintf(os.Stderr, "spaavet: %d new finding(s) (%d baselined)\n", newCount, len(findings)-newCount)
		os.Exit(1)
	}
	if n := len(findings); n > 0 {
		fmt.Fprintf(os.Stderr, "spaavet: ok (%d baselined finding(s))\n", n)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "spaavet:", err)
	os.Exit(2)
}

func printHelp() {
	fmt.Println("spaavet analyzers:")
	for _, a := range lint.All() {
		fmt.Printf("\n%s: %s\n", a.Name, a.Doc)
		if scope, ok := lint.Scopes[a.Name]; ok {
			fmt.Printf("  scope: %v\n", scope)
		} else if excl, ok := lint.Excluded[a.Name]; ok {
			fmt.Printf("  scope: all packages except %v\n", excl)
		} else {
			fmt.Printf("  scope: all packages\n")
		}
	}
}

// Finding is one diagnostic with a cwd-relative position, ordered and
// serialized deterministically.
type Finding struct {
	File      string `json:"file"`
	Line      int    `json:"line"`
	Col       int    `json:"col"`
	Analyzer  string `json:"analyzer"`
	Message   string `json:"message"`
	Baselined bool   `json:"baselined"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", f.File, f.Line, f.Col, f.Message, f.Analyzer)
}

// key is the position-independent identity used for baseline matching:
// line and column drift with unrelated edits, so the baseline pins
// (file, analyzer, message) instead.
func (f Finding) key() string {
	return fmt.Sprintf("%s: %s (%s)", f.File, f.Message, f.Analyzer)
}

// listedPackage is the subset of `go list -json` output spaavet needs.
type listedPackage struct {
	Dir         string
	ImportPath  string
	GoFiles     []string
	TestGoFiles []string
}

// analyzeAll loads every listed package, runs the cross-package facts
// pass over all of them, then applies every in-scope analyzer. Findings
// come back globally sorted (file, then numeric line/column, then
// analyzer) so output order never depends on package list order or string
// collation of line numbers. A package that fails to parse or type-check
// aborts the run: analyzers over broken syntax trees produce unreliable
// verdicts in both directions.
func analyzeAll(pkgs []listedPackage, tests bool) ([]Finding, *analysis.FactStore, error) {
	loader := load.New()
	type loaded struct {
		meta listedPackage
		pkg  *load.Package
	}
	var all []loaded
	for _, p := range pkgs {
		files := append([]string{}, p.GoFiles...)
		if tests {
			files = append(files, p.TestGoFiles...)
		}
		if len(files) == 0 {
			continue
		}
		for i, f := range files {
			files[i] = filepath.Join(p.Dir, f)
		}
		pkg, err := loader.Files(p.ImportPath, files)
		if err != nil {
			return nil, nil, fmt.Errorf("parse failure in %s: %w", p.ImportPath, err)
		}
		if len(pkg.TypeErrors) > 0 {
			msgs := make([]string, 0, len(pkg.TypeErrors))
			for _, terr := range pkg.TypeErrors {
				msgs = append(msgs, terr.Error())
			}
			const maxShown = 5
			if len(msgs) > maxShown {
				msgs = append(msgs[:maxShown], fmt.Sprintf("... and %d more", len(msgs)-maxShown))
			}
			return nil, nil, fmt.Errorf("type-check failure in %s (fix before linting):\n\t%s",
				p.ImportPath, strings.Join(msgs, "\n\t"))
		}
		all = append(all, loaded{meta: p, pkg: pkg})
	}

	// Facts pass: every package first, so analyzers see a complete store
	// regardless of analysis order.
	facts := analysis.NewFactStore()
	for _, l := range all {
		facts.Add(analysis.ComputeFacts(l.pkg.Path, l.pkg.Fset, l.pkg.Files, l.pkg.Pkg, l.pkg.Info))
	}

	var findings []Finding
	for _, l := range all {
		for _, a := range lint.All() {
			if !lint.InScope(a.Name, l.meta.ImportPath) {
				continue
			}
			pass := analysis.NewPass(a, l.pkg.Fset, l.pkg.Files, l.pkg.Pkg, l.pkg.Info)
			pass.SetFacts(facts)
			if err := a.Run(pass); err != nil {
				return nil, nil, fmt.Errorf("%s on %s: %w", a.Name, l.meta.ImportPath, err)
			}
			for _, d := range pass.Diagnostics() {
				pos := loader.Fset.Position(d.Pos)
				name := pos.Filename
				if rel, err := filepath.Rel(mustGetwd(), name); err == nil && !filepath.IsAbs(rel) {
					name = filepath.ToSlash(rel)
				}
				findings = append(findings, Finding{
					File:     name,
					Line:     pos.Line,
					Col:      pos.Column,
					Analyzer: d.Analyzer,
					Message:  d.Message,
				})
			}
		}
	}
	sortFindings(findings)
	return findings, facts, nil
}

// sortFindings orders findings globally and deterministically: by file,
// then numeric line and column (not string collation, where line 10 sorts
// before line 2), then analyzer and message.
func sortFindings(findings []Finding) {
	sort.SliceStable(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// jsonDocument is the -json envelope.
type jsonDocument struct {
	Schema        string    `json:"schema"`
	Total         int       `json:"total"`
	New           int       `json:"new"`
	Baselined     int       `json:"baselined"`
	StaleBaseline []string  `json:"stale_baseline,omitempty"`
	Findings      []Finding `json:"findings"`
}

func writeJSON(w io.Writer, findings []Finding, newCount int, stale []string) error {
	doc := jsonDocument{
		Schema:        "spaavet-findings/v1",
		Total:         len(findings),
		New:           newCount,
		Baselined:     len(findings) - newCount,
		StaleBaseline: stale,
		Findings:      findings,
	}
	if doc.Findings == nil {
		doc.Findings = []Finding{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

func mustGetwd() string {
	wd, err := os.Getwd()
	if err != nil {
		return "."
	}
	return wd
}

func goList(patterns []string) ([]listedPackage, error) {
	cmd := exec.Command("go", append([]string{"list", "-json"}, patterns...)...)
	var out, stderr bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %v: %s", err, stderr.String())
	}
	dec := json.NewDecoder(&out)
	var pkgs []listedPackage
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}
