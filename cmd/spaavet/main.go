// Command spaavet is the repository's static-analysis multichecker: it
// runs the internal/lint analyzers (mapiter, delaybound, floateq,
// errflush) over Go packages and exits nonzero on any finding. It is the
// compile-time half of the verification story — the runtime half is
// snn.Validate / `spaabench validate`, which checks constructed networks
// against the paper's Definition 1-2 invariants.
//
// Usage:
//
//	go run ./cmd/spaavet ./...          # analyze the whole module
//	go run ./cmd/spaavet -tests ./...   # include _test.go files
//	go run ./cmd/spaavet help           # describe the analyzers
//
// spaavet must run from inside the module (the stdlib source importer
// resolves module-local imports through the go command). Findings can be
// waived line-by-line with //lint:<analyzer> directives; see docs/MODEL.md
// for the //lint:deterministic convention.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
	"repro/internal/lint/load"
)

func main() {
	tests := flag.Bool("tests", false, "also analyze _test.go files of each package")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: spaavet [-tests] [package patterns]")
		fmt.Fprintln(os.Stderr, "       spaavet help")
	}
	flag.Parse()
	args := flag.Args()
	if len(args) == 1 && args[0] == "help" {
		printHelp()
		return
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	findings, err := run(args, *tests)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spaavet:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "spaavet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

func printHelp() {
	fmt.Println("spaavet analyzers:")
	for _, a := range lint.All() {
		fmt.Printf("\n%s: %s\n", a.Name, a.Doc)
		if scope, ok := lint.Scopes[a.Name]; ok {
			fmt.Printf("  scope: %v\n", scope)
		} else {
			fmt.Printf("  scope: all packages\n")
		}
	}
}

// listedPackage is the subset of `go list -json` output spaavet needs.
type listedPackage struct {
	Dir         string
	ImportPath  string
	GoFiles     []string
	TestGoFiles []string
}

func run(patterns []string, tests bool) ([]string, error) {
	pkgs, err := goList(patterns)
	if err != nil {
		return nil, err
	}
	loader := load.New()
	var findings []string
	for _, p := range pkgs {
		files := append([]string{}, p.GoFiles...)
		if tests {
			files = append(files, p.TestGoFiles...)
		}
		if len(files) == 0 {
			continue
		}
		for i, f := range files {
			files[i] = filepath.Join(p.Dir, f)
		}
		pkg, err := loader.Files(p.ImportPath, files)
		if err != nil {
			return nil, err
		}
		for _, terr := range pkg.TypeErrors {
			findings = append(findings, fmt.Sprintf("%v (typecheck)", terr))
		}
		for _, a := range lint.All() {
			if !lint.InScope(a.Name, p.ImportPath) {
				continue
			}
			pass := analysis.NewPass(a, pkg.Fset, pkg.Files, pkg.Pkg, pkg.Info)
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a.Name, p.ImportPath, err)
			}
			for _, d := range pass.Diagnostics() {
				findings = append(findings, formatDiagnostic(loader.Fset, d))
			}
		}
	}
	sort.Strings(findings)
	return findings, nil
}

func formatDiagnostic(fset *token.FileSet, d analysis.Diagnostic) string {
	pos := fset.Position(d.Pos)
	name := pos.Filename
	if rel, err := filepath.Rel(mustGetwd(), name); err == nil && !filepath.IsAbs(rel) {
		name = rel
	}
	return fmt.Sprintf("%s:%d:%d: %s (%s)", name, pos.Line, pos.Column, d.Message, d.Analyzer)
}

func mustGetwd() string {
	wd, err := os.Getwd()
	if err != nil {
		return "."
	}
	return wd
}

func goList(patterns []string) ([]listedPackage, error) {
	cmd := exec.Command("go", append([]string{"list", "-json"}, patterns...)...)
	var out, stderr bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %v: %s", err, stderr.String())
	}
	dec := json.NewDecoder(&out)
	var pkgs []listedPackage
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}
