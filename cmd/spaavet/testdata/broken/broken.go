// A deliberately type-broken package: spaavet must refuse to lint it
// (exit 2 with a clear message) rather than emit analyzer verdicts over a
// package that never type-checked. Go tooling ignores testdata
// directories, so this file is reachable only through the driver tests.
package broken

func mistyped() int {
	var x int = "not an int"
	return x
}
