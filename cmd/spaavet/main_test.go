package main

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// TestAnalyzeAllTypeCheckFailure is the regression test for the
// fail-loudly contract: a package that does not type-check must abort the
// run with a clear error, not degrade into per-finding noise or silently
// analyze a partial AST.
func TestAnalyzeAllTypeCheckFailure(t *testing.T) {
	pkgs := []listedPackage{{
		Dir:        filepath.Join("testdata", "broken"),
		ImportPath: "spaavet/testdata/broken",
		GoFiles:    []string{"broken.go"},
	}}
	_, _, err := analyzeAll(pkgs, false)
	if err == nil {
		t.Fatal("analyzeAll accepted a package that does not type-check")
	}
	if !strings.Contains(err.Error(), "type-check failure") {
		t.Errorf("error %q does not name the type-check failure", err)
	}
	if !strings.Contains(err.Error(), "spaavet/testdata/broken") {
		t.Errorf("error %q does not name the failing package", err)
	}
}

// TestSortFindingsGlobalDeterminism is the regression test for global,
// numeric ordering: findings from different packages interleave by file,
// and line 2 sorts before line 10 (string collation would reverse them).
func TestSortFindingsGlobalDeterminism(t *testing.T) {
	in := []Finding{
		{File: "b/zz.go", Line: 3, Col: 1, Analyzer: "mapiter", Message: "m2"},
		{File: "a/file.go", Line: 10, Col: 1, Analyzer: "wallclock", Message: "m1"},
		{File: "a/file.go", Line: 2, Col: 5, Analyzer: "wallclock", Message: "m1"},
		{File: "a/file.go", Line: 2, Col: 5, Analyzer: "atomicmix", Message: "m0"},
		{File: "b/zz.go", Line: 3, Col: 1, Analyzer: "mapiter", Message: "m1"},
	}
	want := []Finding{
		{File: "a/file.go", Line: 2, Col: 5, Analyzer: "atomicmix", Message: "m0"},
		{File: "a/file.go", Line: 2, Col: 5, Analyzer: "wallclock", Message: "m1"},
		{File: "a/file.go", Line: 10, Col: 1, Analyzer: "wallclock", Message: "m1"},
		{File: "b/zz.go", Line: 3, Col: 1, Analyzer: "mapiter", Message: "m1"},
		{File: "b/zz.go", Line: 3, Col: 1, Analyzer: "mapiter", Message: "m2"},
	}
	for trial := 0; trial < 3; trial++ {
		got := append([]Finding(nil), in...)
		// Rotate the input each trial so the result cannot depend on
		// arrival order.
		got = append(got[trial:], got[:trial]...)
		sortFindings(got)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: sorted order = %v, want %v", trial, got, want)
		}
	}
}

func TestBaselineMultisetMatching(t *testing.T) {
	findings := []Finding{
		{File: "a.go", Line: 1, Analyzer: "probealloc", Message: "boom"},
		{File: "a.go", Line: 9, Analyzer: "probealloc", Message: "boom"}, // same key, different line
		{File: "b.go", Line: 2, Analyzer: "wallclock", Message: "tick"},
	}
	b := baseline{
		"a.go: boom (probealloc)": 1, // covers only ONE of the two identical findings
		"c.go: gone (atomicmix)":  1, // stale
		"b.go: tick (wallclock)":  1,
	}
	newCount, stale := applyBaseline(b, findings)
	if newCount != 1 {
		t.Errorf("newCount = %d, want 1 (multiset: one of two duplicate findings is uncovered)", newCount)
	}
	if !findings[0].Baselined || findings[1].Baselined || !findings[2].Baselined {
		t.Errorf("baselined flags = %v,%v,%v; want true,false,true",
			findings[0].Baselined, findings[1].Baselined, findings[2].Baselined)
	}
	if want := []string{"c.go: gone (atomicmix)"}; !reflect.DeepEqual(stale, want) {
		t.Errorf("stale = %v, want %v", stale, want)
	}
}

func TestBaselineFileResolution(t *testing.T) {
	if p, req := baselineFile(""); p != defaultBaseline || req {
		t.Errorf("baselineFile(\"\") = %q,%v; want default optional", p, req)
	}
	if p, _ := baselineFile("none"); p != "" {
		t.Errorf("baselineFile(none) = %q; want disabled", p)
	}
	if p, req := baselineFile("x.txt"); p != "x.txt" || !req {
		t.Errorf("baselineFile(x.txt) = %q,%v; want explicit required", p, req)
	}
	if _, err := loadBaseline("does-not-exist.baseline", true); err == nil {
		t.Error("explicit missing baseline must be an error")
	}
	if b, err := loadBaseline("does-not-exist.baseline", false); err != nil || len(b) != 0 {
		t.Errorf("optional missing baseline: got %v, %v; want empty, nil", b, err)
	}
}

func TestWriteJSONSchema(t *testing.T) {
	var buf bytes.Buffer
	findings := []Finding{{File: "a.go", Line: 3, Col: 7, Analyzer: "wallclock", Message: "tick", Baselined: true}}
	if err := writeJSON(&buf, findings, 0, []string{"b.go: old (mapiter)"}); err != nil {
		t.Fatal(err)
	}
	var doc jsonDocument
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if doc.Schema != "spaavet-findings/v1" || doc.Total != 1 || doc.New != 0 || doc.Baselined != 1 {
		t.Errorf("document header = %+v, want schema spaavet-findings/v1, total 1, new 0, baselined 1", doc)
	}
	if len(doc.Findings) != 1 || doc.Findings[0] != findings[0] {
		t.Errorf("findings round-trip = %+v", doc.Findings)
	}
	// Empty runs must still produce a findings array, not null.
	buf.Reset()
	if err := writeJSON(&buf, nil, 0, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"findings": []`) {
		t.Errorf("empty findings serialized as %s; want an empty array", buf.String())
	}
}
