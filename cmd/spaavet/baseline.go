package main

import (
	"bufio"
	"fmt"
	"os"
	"sort"
	"strings"
)

// The baseline is the accepted-findings ledger: one entry per line in the
// position-independent `file: message (analyzer)` form (no line/column, so
// unrelated edits above a finding do not invalidate it). A finding that
// matches an unconsumed baseline entry is reported but does not fail the
// build; a finding with no matching entry is new and fails; a baseline
// entry matching no finding is stale and is reported on stderr so the
// ledger gets pruned. Matching is multiset-style: two identical findings
// need two identical entries, so fixing one of a pair and regressing it
// later still trips the gate.

// baselineFile resolves the -baseline flag: an explicit path must load,
// the default path is optional, and "none" disables the baseline.
func baselineFile(flagValue string) (path string, required bool) {
	switch flagValue {
	case "":
		return defaultBaseline, false
	case "none":
		return "", false
	default:
		return flagValue, true
	}
}

// baseline is a multiset of accepted finding keys.
type baseline map[string]int

// loadBaseline reads the entry-per-line baseline file. Blank lines and
// #-comments are ignored.
func loadBaseline(path string, required bool) (baseline, error) {
	if path == "" {
		return baseline{}, nil
	}
	f, err := os.Open(path)
	if os.IsNotExist(err) && !required {
		return baseline{}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	defer f.Close()
	b := baseline{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		b[line]++
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	return b, nil
}

// applyBaseline marks findings covered by the baseline, returning how many
// findings are new and which baseline entries went unmatched (stale).
func applyBaseline(b baseline, findings []Finding) (newCount int, stale []string) {
	remaining := make(baseline, len(b))
	for k, n := range b {
		remaining[k] = n
	}
	for i := range findings {
		k := findings[i].key()
		if remaining[k] > 0 {
			remaining[k]--
			findings[i].Baselined = true
		} else {
			newCount++
		}
	}
	for k, n := range remaining {
		for i := 0; i < n; i++ {
			stale = append(stale, k)
		}
	}
	sort.Strings(stale)
	return newCount, stale
}

// writeBaselineFile accepts the current findings as the new ledger.
func writeBaselineFile(path string, findings []Finding) error {
	if path == "" {
		return fmt.Errorf("baseline: -write-baseline with -baseline=none makes no sense")
	}
	var sb strings.Builder
	sb.WriteString("# spaavet baseline: accepted findings, one `file: message (analyzer)` per line.\n")
	sb.WriteString("# Regenerate with `go run ./cmd/spaavet -write-baseline ./...` after deliberate\n")
	sb.WriteString("# changes; new findings not listed here fail the build. See docs/STATIC-ANALYSIS.md.\n")
	keys := make([]string, 0, len(findings))
	for _, f := range findings {
		keys = append(keys, f.key())
	}
	sort.Strings(keys)
	for _, k := range keys {
		sb.WriteString(k)
		sb.WriteByte('\n')
	}
	return os.WriteFile(path, []byte(sb.String()), 0o644)
}
