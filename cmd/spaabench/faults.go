package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/faults"
	"repro/internal/graph"
)

// cmdFaults runs the fault-injection sweep: the Section 3 SSSP workload
// under increasing spike-drop rates (plus any other fault knobs), with
// bare, NMR-voted, and self-checked runs at every point. The default
// workload matches BENCH_snn_sssp.json, so the rate-0 row of the emitted
// spaa-faults/v1 manifest must reproduce the committed baseline costs —
// CI checks exactly that.
func cmdFaults(args []string) error {
	fs := flag.NewFlagSet("faults", flag.ExitOnError)
	n := fs.Int("n", 256, "vertices")
	m := fs.Int("m", 1024, "edges")
	u := fs.Int64("u", 8, "max edge length U")
	seed := fs.Int64("seed", 1, "graph seed")
	src := fs.Int("src", 0, "source vertex")
	faultSeed := fs.Int64("fault-seed", 1, "fault campaign seed")
	rates := fs.String("rates", "0,0.002,0.005,0.01,0.02,0.05", "comma-separated spike-drop rates to sweep")
	trials := fs.Int("trials", 20, "trials per sweep point")
	k := fs.Int("k", 3, "NMR replica count")
	retries := fs.Int("retries", 3, "self-check retry budget")
	jitterProb := fs.Float64("jitter", 0, "delay-jitter probability per delivery")
	jitterMax := fs.Int64("jitter-max", 2, "max delay jitter (steps)")
	wnoise := fs.Float64("wnoise", 0, "weight-noise magnitude (relative)")
	silentProb := fs.Float64("silent", 0, "stuck-at-silent probability per neuron")
	fireProb := fs.Float64("fire", 0, "stuck-at-firing probability per neuron")
	upsetProb := fs.Float64("upset", 0, "voltage-upset probability per touched neuron")
	upsetMag := fs.Float64("upset-mag", 0.5, "voltage-upset magnitude")
	stuckSilent := fs.String("stuck-silent", "", "comma-separated vertex ids pinned stuck-at-silent")
	quick := fs.Bool("quick", false, "CI smoke mode: 3 trials over rates 0,0.01")
	strict := fs.Bool("strict", false, "exit nonzero if any trial entered degraded mode")
	metrics := fs.String("metrics", "", "write the spaa-faults/v1 manifest to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *quick {
		*trials = 3
		*rates = "0,0.01"
	}
	rateList, err := parseFloats(*rates)
	if err != nil {
		return err
	}
	base := faults.Model{
		JitterProb:      *jitterProb,
		JitterMax:       *jitterMax,
		WeightNoise:     *wnoise,
		StuckSilentProb: *silentProb,
		StuckFireProb:   *fireProb,
		UpsetProb:       *upsetProb,
		UpsetMag:        *upsetMag,
		Seed:            *faultSeed,
	}
	if *stuckSilent != "" {
		pins, err := parseInts(*stuckSilent)
		if err != nil {
			return err
		}
		base.PinnedSilent = pins
	}

	g := graph.RandomGnm(*n, *m, graph.Uniform(*u), *seed, true)
	cfg := faults.SweepConfig{
		G: g, GraphSeed: *seed, GraphKind: "random", Src: *src,
		Base: base, Rates: rateList, Trials: *trials, K: *k, Retries: *retries,
	}
	man := faults.Sweep(cfg)

	fmt.Printf("fault sweep: n=%d m=%d u=%d src=%d | model %s | %d trials/point, NMR k=%d, %d retries\n",
		*n, *m, *u, *src, base.String(), *trials, *k, *retries)
	fmt.Printf("baseline (fault-free): spikes=%d deliveries=%d steps=%d spike_time=%d\n\n",
		man.Baseline.Spikes, man.Baseline.Deliveries, man.Baseline.Steps, man.BaselineTime)
	faults.RenderCurve(os.Stdout, man)

	var degraded, wrong, caught int
	for _, p := range man.Points {
		degraded += p.Degraded
		wrong += p.WrongAnswer
		caught += p.SelfCheckCaught
	}
	fmt.Printf("\ntotals: %d wrong single-run answers (all counted), %d bad attempts caught by self-check, %d degraded fallbacks\n",
		wrong, caught, degraded)

	if *metrics != "" {
		if err := man.WriteFile(*metrics); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote faults manifest to %s\n", *metrics)
	}
	if *strict && degraded > 0 {
		return fmt.Errorf("strict mode: %d trials fell back to degraded (classic) mode", degraded)
	}
	return nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad float list %q: %w", s, err)
		}
		out = append(out, v)
	}
	return out, nil
}
