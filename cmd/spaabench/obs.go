package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/congest"
	"repro/internal/distance"
	"repro/internal/fleet"
	"repro/internal/graph"
	"repro/internal/snn"
	"repro/internal/telemetry"
)

// obs bundles the observability flags shared by the benchmark
// subcommands: -metrics (JSON run manifest), -trace (Chrome trace_event
// JSON for Perfetto), -cpuprofile and -memprofile (pprof). See
// docs/OBSERVABILITY.md for the formats.
type obs struct {
	metricsPath, tracePath, cpuPath, memPath string

	// deterministic zeroes the manifest's wall-clock fields so the
	// -metrics output is byte-reproducible (the spaa-faults/v1 property,
	// opt-in here).
	deterministic bool

	// force turns probing on without any output path — `spaabench
	// regress` re-runs baselines through the same code paths and collects
	// the manifest in memory.
	force bool

	command   string
	start     time.Time
	stopCPU   func() error
	memDone   bool
	recFolded bool

	// Rec is the probe sink handed to the instrumented engines; Man and
	// Tr accumulate what finish() writes out.
	Rec *telemetry.Recorder
	Man *telemetry.Manifest
	Tr  *telemetry.Tracer
}

// addObsFlags registers the observability flags on fs.
func addObsFlags(fs *flag.FlagSet) *obs {
	o := &obs{}
	fs.StringVar(&o.metricsPath, "metrics", "", "write a JSON run manifest to this file")
	fs.StringVar(&o.tracePath, "trace", "", "write Chrome trace_event JSON (open in Perfetto) to this file")
	fs.StringVar(&o.cpuPath, "cpuprofile", "", "write a pprof CPU profile to this file")
	fs.StringVar(&o.memPath, "memprofile", "", "write a pprof heap profile to this file")
	fs.BoolVar(&o.deterministic, "deterministic", false, "zero the manifest's wall-clock fields (created_unix_ms, wall_ms) so -metrics output is byte-reproducible")
	return o
}

// activeObs tracks bundles whose profiling outputs are not yet
// finalized. cmd* functions return errors to main, which calls os.Exit —
// skipping any deferred pprof finalization — so the exit path flushes
// this list instead (flushProfiles). Guarded by a mutex only for the
// sake of tests; the CLI itself is single-threaded here.
var (
	activeObsMu sync.Mutex
	activeObs   []*obs
)

// flushProfiles finalizes profiling for every obs bundle still open —
// the error-exit path's guarantee that a failing run never loses its
// -cpuprofile/-memprofile output. Flush errors are reported to stderr
// but do not change the exit code: the run's own error takes precedence.
func flushProfiles() {
	activeObsMu.Lock()
	pending := append([]*obs(nil), activeObs...)
	activeObsMu.Unlock()
	for _, o := range pending {
		if err := o.finishProfiles(); err != nil {
			fmt.Fprintln(os.Stderr, "spaabench: flushing profiles:", err)
		}
	}
}

// finishProfiles stops the CPU profile and writes the heap profile
// (each at most once), then deregisters the bundle.
func (o *obs) finishProfiles() error {
	var first error
	if o.stopCPU != nil {
		if err := o.stopCPU(); err != nil {
			first = err
		}
		o.stopCPU = nil
	}
	if o.memPath != "" && !o.memDone {
		o.memDone = true
		if err := telemetry.WriteHeapProfile(o.memPath); err != nil && first == nil {
			first = err
		}
	}
	activeObsMu.Lock()
	for i, a := range activeObs {
		if a == o {
			activeObs = append(activeObs[:i], activeObs[i+1:]...)
			break
		}
	}
	activeObsMu.Unlock()
	return first
}

// on reports whether any telemetry output was requested; engines are
// probed only in that case, keeping the default path on the nil-probe
// fast branch.
func (o *obs) on() bool { return o.force || o.metricsPath != "" || o.tracePath != "" }

// begin starts profiling and the wall clock. Call after flag parsing,
// before the measured work.
func (o *obs) begin(command string) error {
	o.command = command
	//lint:wallclock the manifest's wall_ms field measures real elapsed time by design
	o.start = time.Now()
	o.Rec = telemetry.NewRecorder()
	o.Man = telemetry.NewManifest("spaabench", command)
	o.Tr = telemetry.NewTracer()
	if o.cpuPath != "" {
		stop, err := telemetry.StartCPUProfile(o.cpuPath)
		if err != nil {
			return err
		}
		o.stopCPU = stop
	}
	if o.cpuPath != "" || o.memPath != "" {
		activeObsMu.Lock()
		activeObs = append(activeObs, o)
		activeObsMu.Unlock()
	}
	return nil
}

// snnProbes returns the recorder as an optional snn probe argument.
func (o *obs) snnProbes() []snn.StepProbe {
	if !o.on() {
		return nil
	}
	return []snn.StepProbe{o.Rec}
}

// congestProbes returns the recorder as an optional congest probe argument.
func (o *obs) congestProbes() []congest.Probe {
	if !o.on() {
		return nil
	}
	return []congest.Probe{o.Rec}
}

// fleetProbes returns the recorder as an optional fleet probe argument.
func (o *obs) fleetProbes() []fleet.Probe {
	if !o.on() {
		return nil
	}
	return []fleet.Probe{o.Rec}
}

// distanceProbe returns the recorder as a distance probe, or nil when
// telemetry is off.
func (o *obs) distanceProbe() distance.Probe {
	if !o.on() {
		return nil
	}
	return o.Rec
}

// setGraph records the workload graph's parameters in the manifest.
func (o *obs) setGraph(g *graph.Graph, seed int64, kind string) {
	o.Man.Graph = &telemetry.GraphParams{
		N: g.N(), M: g.M(), MaxLen: g.MaxLen(), Seed: seed, Kind: kind,
	}
}

// manifest folds the recorder into the manifest (once) and returns it —
// the in-memory form `spaabench regress` diffs without writing a file.
func (o *obs) manifest() *telemetry.Manifest {
	if !o.recFolded {
		o.Man.AddRecorder(o.Rec)
		o.recFolded = true
	}
	return o.Man
}

// finish stops profiling and writes every requested output.
func (o *obs) finish() error {
	if err := o.finishProfiles(); err != nil {
		return err
	}
	if o.metricsPath != "" {
		man := o.manifest()
		//lint:wallclock manifest finalization stamps real elapsed time; -deterministic zeroes it downstream
		man.Finalize(o.start, time.Since(o.start), telemetry.ManifestOptions{Deterministic: o.deterministic})
		if err := man.WriteFile(o.metricsPath); err != nil {
			return err
		}
	}
	if o.tracePath != "" {
		o.Tr.AddRecorder(o.Rec)
		if err := o.Tr.WriteFile(o.tracePath); err != nil {
			return err
		}
	}
	return nil
}
