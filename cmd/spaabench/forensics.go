package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/graph"
	"repro/internal/harness"
	"repro/internal/telemetry"
)

// The provenance forensics subcommands: `why` records a spiking SSSP run
// with the causal flight recorder and walks the proof tree behind a
// spike, `replay` re-executes a recorded log and verifies it
// bit-identical, and `regress` diffs fresh runs against committed
// BENCH_*.json baselines.

// cmdWhy explains why a neuron fired: it runs the Section 3 SSSP
// construction with the flight recorder attached (or reads an existing
// provenance log with -in) and prints the causal proof tree of the
// queried spike — each level one synaptic delivery, bottoming out at the
// induced input. For SSSP relays the primary chain (first antecedent at
// each level, the FirstCause latch) is exactly the shortest path.
func cmdWhy(args []string) error {
	fs := flag.NewFlagSet("why", flag.ExitOnError)
	n := fs.Int("n", 64, "vertices")
	m := fs.Int("m", 256, "edges")
	u := fs.Int64("u", 8, "max edge length")
	seed := fs.Int64("seed", 1, "seed")
	src := fs.Int("src", 0, "source vertex")
	dst := fs.Int("dst", -1, "vertex to explain (also the default -neuron)")
	neuron := fs.Int("neuron", -1, "neuron to explain (defaults to -dst)")
	at := fs.Int64("t", -1, "explain the spike at exactly this time (-1: the neuron's first spike)")
	depth := fs.Int("depth", 0, "max causal depth in links (0: unlimited)")
	fan := fs.Int("fan", 0, "max antecedents expanded per spike (0: default 8)")
	save := fs.String("save", "", "write the recorded provenance log (JSONL) to this file")
	in := fs.String("in", "", "walk an existing provenance log instead of running ('-' = stdin)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	opt := telemetry.WalkOptions{MaxDepth: *depth, MaxFan: *fan}

	if *in != "" {
		target := *neuron
		if target < 0 {
			target = *dst
		}
		if target < 0 {
			return fmt.Errorf("why -in needs -neuron (or -dst) to know which spike to explain")
		}
		log, err := readProvenanceArg(*in)
		if err != nil {
			return err
		}
		root, err := log.CausalTree(int32(target), *at, opt)
		if err != nil {
			return err
		}
		fmt.Print(telemetry.RenderCauseTree(root))
		fmt.Printf("causal depth: %d links\n", root.Depth())
		return nil
	}

	g := graph.RandomGnm(*n, *m, graph.Uniform(*u), *seed, true)
	rec, err := harness.RecordSSSP(g, *src, -1, "spaabench", "why")
	if err != nil {
		return err
	}
	target := *neuron
	if target < 0 {
		target = *dst
	}
	if target < 0 {
		return fmt.Errorf("why needs -neuron or -dst to know which spike to explain")
	}
	root, err := rec.Log.CausalTree(int32(target), *at, opt)
	if err != nil {
		return err
	}
	fmt.Printf("graph n=%d m=%d U=%d seed=%d src=%d\n", g.N(), g.M(), g.MaxLen(), *seed, *src)
	fmt.Print(telemetry.RenderCauseTree(root))

	if path := rec.Path(target); path != nil && *at < 0 {
		hops := len(path) - 1
		parts := make([]string, len(path))
		for i, v := range path {
			parts[i] = fmt.Sprintf("%d", v)
		}
		fmt.Printf("shortest path: %s (dist=%d, %d hops)\n", strings.Join(parts, " -> "), rec.Dist[target], hops)
		chain := len(root.PrimaryChain()) - 1
		verdict := "matches the hop count"
		if chain != hops {
			verdict = fmt.Sprintf("MISMATCH: path has %d hops", hops)
		}
		fmt.Printf("primary causal chain: %d links (%s)\n", chain, verdict)
	}
	if *save != "" {
		if err := rec.Log.WriteFile(*save); err != nil {
			return err
		}
		fmt.Printf("provenance log: %s (%d events)\n", *save, rec.Log.Header.Events)
	}
	return nil
}

// cmdReplay re-executes a recorded provenance log and verifies the fresh
// event stream is bit-identical to the recording; the first divergent
// event, if any, is reported and the exit status is nonzero.
func cmdReplay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: spaabench replay <provenance.jsonl | ->")
	}
	log, err := readProvenanceArg(fs.Arg(0))
	if err != nil {
		return err
	}
	report, err := log.Replay()
	if err != nil {
		return err
	}
	if d := report.Divergence; d != nil {
		fmt.Printf("replayed %d events: DIVERGED\n", report.Events)
		return fmt.Errorf("%v", d)
	}
	fmt.Printf("replay ok: %d events bit-identical (spikes=%d deliveries=%d steps=%d)\n",
		report.Events, report.Stats.Spikes, report.Stats.Deliveries, report.Stats.Steps)
	return nil
}

func readProvenanceArg(name string) (*telemetry.ProvenanceLog, error) {
	if name == "-" {
		return telemetry.ReadProvenance(os.Stdin)
	}
	return telemetry.ReadProvenanceFile(name)
}

// cmdRegress is the manifest regression gate: for every committed
// BENCH_*.json baseline it re-runs the workload the manifest describes
// (same command, graph parameters, and seeds), rebuilds a fresh manifest
// through the same code path, and diffs every cost quantity. Any drift
// outside -tol fails the gate with a nonzero exit.
func cmdRegress(args []string) error {
	fs := flag.NewFlagSet("regress", flag.ExitOnError)
	tol := fs.Float64("tol", 0, "accepted relative drift for cost quantities (0: exact)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("usage: spaabench regress [-tol 0.02] <baseline.json ...>")
	}
	failed := 0
	for _, path := range fs.Args() {
		base, err := readManifestFile(path)
		if err != nil {
			return err
		}
		fresh, err := rerunBaseline(base)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		drifts := telemetry.DiffManifests(base, fresh, telemetry.Tolerance{Rel: *tol})
		if len(drifts) == 0 {
			fmt.Printf("ok   %s (%s)\n", path, base.Command)
			continue
		}
		failed++
		fmt.Printf("FAIL %s (%s): %d quantities drifted\n", path, base.Command, len(drifts))
		for _, d := range drifts {
			fmt.Printf("  %s\n", d)
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d baselines drifted", failed, fs.NArg())
	}
	fmt.Printf("all %d baselines within tolerance\n", fs.NArg())
	return nil
}

func readManifestFile(path string) (*telemetry.Manifest, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return telemetry.ReadManifest(f)
}

// rerunBaseline re-executes the workload a baseline manifest describes
// through the shared runner for its command and returns the fresh
// manifest.
func rerunBaseline(base *telemetry.Manifest) (*telemetry.Manifest, error) {
	// deterministic: regress compares counters, not wall clocks; a
	// re-run manifest must be byte-stable modulo the measured series.
	o := &obs{force: true, deterministic: true}
	if err := o.begin(base.Command); err != nil {
		return nil, err
	}
	switch base.Command {
	case "sssp":
		if algo := cfgString(base, "algo", "spiking"); algo != "spiking" {
			return nil, fmt.Errorf("regress can re-run only -algo spiking baselines (got %q)", algo)
		}
		g, err := baselineGraph(base)
		if err != nil {
			return nil, err
		}
		runSSSPSpiking(o, g, base.Graph.Seed, cfgInt(base, "src", 0), cfgInt(base, "dst", -1))
	case "congest":
		g, err := baselineGraph(base)
		if err != nil {
			return nil, err
		}
		runCongest(o, g, base.Graph.Seed)
	case "table1":
		sizes := cfgInts(base, "sizes")
		if len(sizes) == 0 {
			return nil, fmt.Errorf("table1 baseline has no sizes in config")
		}
		runTable1(o, harness.Table1Config{
			Sizes:        sizes,
			Density:      cfgInt(base, "density", 4),
			U:            int64(cfgInt(base, "u", 8)),
			K:            cfgInt(base, "k", 8),
			C:            cfgInt(base, "c", 4),
			Seed:         int64(cfgInt(base, "seed", 1)),
			SkipMovement: cfgBool(base, "skip_movement"),
		})
	default:
		return nil, fmt.Errorf("regress cannot re-run command %q (supported: sssp, congest, table1)", base.Command)
	}
	return o.manifest(), nil
}

// baselineGraph regenerates the workload graph a manifest records. The
// maximum edge length passed to the generator comes from config "u" when
// present and falls back to the graph's recorded max_len (identical for
// every committed baseline: with hundreds of uniform draws the maximum
// is always attained).
func baselineGraph(base *telemetry.Manifest) (*graph.Graph, error) {
	gp := base.Graph
	if gp == nil {
		return nil, fmt.Errorf("baseline has no graph parameters to regenerate from")
	}
	if gp.Kind != "" && gp.Kind != "random" {
		return nil, fmt.Errorf("regress can regenerate only random graphs (got %q)", gp.Kind)
	}
	u := int64(cfgInt(base, "u", int(gp.MaxLen)))
	if u < 1 {
		return nil, fmt.Errorf("baseline graph has no usable max edge length")
	}
	return graph.RandomGnm(gp.N, gp.M, graph.Uniform(u), gp.Seed, true), nil
}

// Config values arrive from JSON as float64 (numbers), bool, string, or
// []any; these helpers decode with defaults.

func cfgInt(m *telemetry.Manifest, key string, def int) int {
	if v, ok := m.Config[key].(float64); ok {
		return int(v)
	}
	return def
}

func cfgBool(m *telemetry.Manifest, key string) bool {
	v, _ := m.Config[key].(bool)
	return v
}

func cfgString(m *telemetry.Manifest, key, def string) string {
	if v, ok := m.Config[key].(string); ok {
		return v
	}
	return def
}

func cfgInts(m *telemetry.Manifest, key string) []int {
	raw, ok := m.Config[key].([]any)
	if !ok {
		return nil
	}
	out := make([]int, 0, len(raw))
	for _, x := range raw {
		if v, ok := x.(float64); ok {
			out = append(out, int(v))
		}
	}
	return out
}
