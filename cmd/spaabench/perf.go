package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/harness"
	"repro/internal/telemetry"
)

// perfBaselineFile names the committed baseline manifest of a case.
func perfBaselineFile(name string) string {
	return "BENCH_perf_" + name + ".json"
}

// cmdPerf runs the named benchmark tier and compares each case against
// its committed BENCH_perf_<case>.json baseline: counter-derived
// quantities exactly (they are functions of the seed alone), total wall
// time within the -wall-tol band when both sides measured it. The trend
// table always prints; -gate turns any violation into a nonzero exit —
// the CI perf-smoke job runs `perf -tier small -gate` on every push and
// proves the gate trips with -slowdown-ms.
func cmdPerf(args []string) error {
	fs := flag.NewFlagSet("perf", flag.ExitOnError)
	tier := fs.String("tier", "small", "benchmark tier: smoke|small|large|all")
	caseList := fs.String("cases", "", "comma-separated case names (overrides -tier)")
	baselineDir := fs.String("baseline-dir", ".", "directory holding BENCH_perf_<case>.json baselines")
	writeBaseline := fs.String("write-baseline", "", "write fresh manifests as baselines into this directory and exit")
	out := fs.String("out", "", "also write fresh manifests into this directory")
	gate := fs.Bool("gate", false, "exit nonzero when any case drifts from its baseline")
	tol := fs.Float64("tol", 0, "relative tolerance for counter-derived quantities (0 = exact)")
	wallTol := fs.Float64("wall-tol", 0.5, "accepted relative wall-time slowdown vs baseline")
	deterministic := fs.Bool("deterministic", false, "zero wall-clock fields (byte-reproducible manifests; baselines are written this way)")
	slowdown := fs.Int("slowdown-ms", 0, "inject an artificial run-phase sleep (negative test for the wall gate)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var cases []harness.PerfCase
	if *caseList != "" {
		for _, name := range strings.Split(*caseList, ",") {
			c, ok := harness.PerfCaseByName(strings.TrimSpace(name))
			if !ok {
				return fmt.Errorf("unknown perf case %q", name)
			}
			cases = append(cases, c)
		}
	} else {
		cases = harness.PerfCasesForTier(*tier)
	}
	if len(cases) == 0 {
		return fmt.Errorf("no perf cases in tier %q", *tier)
	}

	opts := harness.PerfOptions{Deterministic: *deterministic, SlowdownMS: *slowdown}
	var deltas []*harness.PerfDelta
	for _, c := range cases {
		man, err := harness.RunPerfCase(c, opts)
		if err != nil {
			return err
		}
		if *writeBaseline != "" {
			path := filepath.Join(*writeBaseline, perfBaselineFile(c.Name))
			if err := man.WriteFile(path); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", path)
			continue
		}
		if *out != "" {
			if err := man.WriteFile(filepath.Join(*out, perfBaselineFile(c.Name))); err != nil {
				return err
			}
		}
		base, err := readPerfBaseline(filepath.Join(*baselineDir, perfBaselineFile(c.Name)))
		if err != nil {
			return err
		}
		deltas = append(deltas, harness.ComparePerf(c.Name, base, man,
			harness.PerfTolerance{Rel: *tol, Wall: *wallTol}))
	}
	if *writeBaseline != "" {
		return nil
	}

	fmt.Print(harness.RenderPerfTrend(deltas))
	var failed []string
	for _, d := range deltas {
		if !d.OK() {
			failed = append(failed, d.Name)
			for _, drift := range d.Drifts {
				fmt.Printf("  %s: %s\n", d.Name, drift)
			}
			if d.WallViolation {
				fmt.Printf("  %s: wall %.1fms exceeds baseline %.1fms by more than %.0f%%\n",
					d.Name, d.Fresh.Perf.WallMS, d.Base.Perf.WallMS, *wallTol*100)
			}
		}
	}
	if *gate && len(failed) > 0 {
		return fmt.Errorf("perf gate failed: %s", strings.Join(failed, ", "))
	}
	return nil
}

// readPerfBaseline loads a baseline manifest; a missing file returns
// nil (reported as MissingBaseline by ComparePerf, fatal only under
// -gate).
func readPerfBaseline(path string) (*telemetry.Manifest, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return telemetry.ReadManifest(f)
}
