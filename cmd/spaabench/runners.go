package main

import (
	"repro/internal/classic"
	"repro/internal/congest"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/harness"
	"repro/internal/telemetry"
)

// The measured work of the sssp/congest/table1 subcommands, factored out
// so `spaabench regress` re-executes a committed baseline through
// exactly the code path (probes, counters, manifest fields) that
// produced it. The cmd* wrappers own flag parsing and printing; the
// runners own everything a manifest records.

// runSSSPSpiking executes the Section 3 spiking SSSP run and fills the
// obs bundle the way `spaabench sssp -algo spiking` records it.
func runSSSPSpiking(o *obs, g *graph.Graph, seed int64, src, dst int) *core.SSSPResult {
	o.setGraph(g, seed, "random")
	o.Man.SetConfig("algo", "spiking").SetConfig("src", src).SetConfig("dst", dst).
		SetConfig("u", g.MaxLen())
	r, err := core.SSSP(g, src, dst, o.snnProbes()...)
	if err != nil {
		// Fault-free runs cannot time out; a failure here is an engine bug.
		panic(err)
	}
	o.Man.Stats = telemetry.StatsFrom(r.Stats)
	o.Rec.Add("neurons", int64(r.Neurons))
	o.Tr.Span("phase", "wavefront", 0, r.SpikeTime)
	return r
}

// congestRun is what runCongest measures (the printable summary of
// `spaabench congest`).
type congestRun struct {
	BFSRounds       int
	BFSMessages     int64
	BFSMaxBits      int
	SSSPRounds      int
	SSSPMessages    int64
	SSSPMaxBits     int
	SSSPTotalBits   int64
	MatchesDijkstra bool
}

// runCongest executes the distributed BFS + SSSP pair and fills the obs
// bundle the way `spaabench congest` records it.
func runCongest(o *obs, g *graph.Graph, seed int64) congestRun {
	o.setGraph(g, seed, "random")
	o.Man.SetConfig("u", g.MaxLen())
	_, bfsRes := congest.BFS(g, 0)
	// Only the SSSP run feeds the per-round probe series; BFS totals go
	// into plain counters so the two runs' rounds don't interleave.
	dist, ssspRes := congest.SSSP(g, 0, g.N(), o.congestProbes()...)
	ref := classic.Dijkstra(g, 0)
	match := true
	for v := range dist {
		if dist[v] != ref.Dist[v] {
			match = false
		}
	}
	o.Rec.Add("bfs_rounds", int64(bfsRes.Rounds))
	o.Rec.Add("bfs_messages", bfsRes.MessagesSent)
	o.Rec.Add("sssp_rounds", int64(ssspRes.Rounds))
	o.Rec.Add("sssp_max_message_bits", int64(ssspRes.MaxMessageBits))
	o.Tr.Span("phase", "congest-sssp", 0, int64(ssspRes.Rounds))
	return congestRun{
		BFSRounds: bfsRes.Rounds, BFSMessages: bfsRes.MessagesSent, BFSMaxBits: bfsRes.MaxMessageBits,
		SSSPRounds: ssspRes.Rounds, SSSPMessages: ssspRes.MessagesSent,
		SSSPMaxBits: ssspRes.MaxMessageBits, SSSPTotalBits: ssspRes.TotalBits,
		MatchesDijkstra: match,
	}
}

// runTable1 executes the Table 1 sweep and fills the obs bundle the way
// `spaabench table1` records it.
func runTable1(o *obs, cfg harness.Table1Config) *harness.Table1Report {
	o.Man.SetConfig("sizes", cfg.Sizes).SetConfig("density", cfg.Density).
		SetConfig("u", cfg.U).SetConfig("k", cfg.K).SetConfig("c", cfg.C).
		SetConfig("seed", cfg.Seed).SetConfig("skip_movement", cfg.SkipMovement)
	cfg.DistanceProbe = o.distanceProbe()
	return harness.RunTable1(cfg)
}
