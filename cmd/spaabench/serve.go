package main

import (
	"bytes"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"repro/internal/metrics"
	"repro/internal/telemetry"
)

// cmdServe runs the live-metrics daemon: a Prometheus-style scrape
// endpoint plus run ingestion and an embedded dashboard. Point a
// `spaabench soak -addr` campaign (or any process POSTing
// spaa-run-manifest/v1 documents to /runs) at it and watch the cost
// measures accumulate live.
//
//	GET  /         live dashboard (single-file HTML)
//	GET  /metrics  Prometheus text exposition
//	GET  /healthz  liveness JSON
//	GET  /runs     JSON run index + totals
//	POST /runs     ingest one run manifest
//	GET  /events   SSE stream of per-run summaries
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:9090", "listen address")
	preload := fs.String("preload", "", "glob of run-manifest JSON files to ingest at startup (e.g. 'BENCH_*.json')")
	if err := fs.Parse(args); err != nil {
		return err
	}
	srv := metrics.NewServer(metrics.NewRegistry())
	if *preload != "" {
		names, err := filepath.Glob(*preload)
		if err != nil {
			return err
		}
		for _, name := range names {
			man, err := readManifestFile(name)
			if err != nil {
				fmt.Fprintf(os.Stderr, "spaabench serve: skipping %s: %v\n", name, err)
				continue
			}
			srv.Ingest(man)
			fmt.Fprintf(os.Stderr, "preloaded %s (%s)\n", name, man.Command)
		}
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Printf("spaabench serve: dashboard http://%s/  metrics http://%s/metrics\n", ln.Addr(), ln.Addr())
	return (&http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}).Serve(ln)
}

// postManifest delivers one run manifest to a serve daemon — the soak
// driver's Submit hook.
func postManifest(client *http.Client, baseURL string, man *telemetry.Manifest) error {
	var body bytes.Buffer
	if err := man.Encode(&body); err != nil {
		return err
	}
	resp, err := client.Post(baseURL+"/runs", "application/json", &body)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("POST /runs: %s", resp.Status)
	}
	return nil
}
