package main

import (
	"bytes"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/service"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// cmdServe runs the live-metrics daemon: a Prometheus-style scrape
// endpoint plus run ingestion and an embedded dashboard. Point a
// `spaabench soak -addr` campaign (or any process POSTing
// spaa-run-manifest/v1 documents to /runs) at it and watch the cost
// measures accumulate live.
//
//	GET  /         live dashboard (single-file HTML)
//	GET  /metrics  Prometheus text exposition
//	GET  /healthz  liveness JSON
//	GET  /runs     JSON run index + totals
//	POST /runs     ingest one run manifest
//	GET  /traces   tail-sampled query traces (spans inline)
//	GET  /events   SSE stream of per-run summaries
//	GET  /query/sssp, /query/khop   resilience-layer query endpoints
//	                (admission control, deadlines, degradation ladder;
//	                traced end to end — responses carry X-Spaa-Trace-Id)
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:9090", "listen address")
	preload := fs.String("preload", "", "glob of run-manifest JSON files to ingest at startup (e.g. 'BENCH_*.json')")
	workers := fs.Int("service-workers", 4, "query worker slots (admission control)")
	queueCap := fs.Int("service-queue", 16, "bounded query queue depth; beyond it queries are shed with 429")
	quota := fs.Int64("quota-tokens", 0, "per-tenant token-bucket capacity (0 disables quotas)")
	quotaRefill := fs.Int64("quota-refill-milli", 1000, "quota refill rate in milli-tokens per ms (1000 = one query/ms)")
	budget := fs.Int64("budget", 0, "default per-query deadline in simulated steps (0 = unlimited)")
	drop := fs.Float64("service-drop", 0, "fault-model delivery drop probability for served queries (chaos-in-prod)")
	seed := fs.Int64("service-seed", 1, "seed anchoring the service's fault and retry streams")
	traceCap := fs.Int("trace-capacity", 256, "sampled query-trace ring capacity (0 disables tracing)")
	traceKeep := fs.Int64("trace-keep-every", 8, "keep 1 in N healthy query traces (tail-flagged ones always kept)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	srv := metrics.NewServer(metrics.NewRegistry())
	svcCfg := service.Config{
		Workers:          *workers,
		QueueCap:         *queueCap,
		MaxRetries:       2,
		QuotaTokens:      *quota,
		QuotaRefillMilli: *quotaRefill,
		Budget:           *budget,
		Model:            faults.Model{DropProb: *drop, Seed: *seed},
		Seed:             *seed,
	}
	if *traceCap > 0 {
		// Wall mode: the live service clock is wall milliseconds, and the
		// trace spans carry wall-µs refinements from the perf tracker.
		svcCfg.Trace = trace.NewCollector(trace.Config{
			Seed: *seed, Capacity: *traceCap, KeepEvery: *traceKeep, Wall: true,
		})
	}
	svc := service.New(srv.Registry(), svcCfg)
	srv.AttachQueries(svc.Handler())
	if svcCfg.Trace != nil {
		stop := srv.AttachTraces(svcCfg.Trace, time.Second)
		defer stop()
	}
	if *preload != "" {
		names, err := filepath.Glob(*preload)
		if err != nil {
			return err
		}
		for _, name := range names {
			man, err := readManifestFile(name)
			if err != nil {
				fmt.Fprintf(os.Stderr, "spaabench serve: skipping %s: %v\n", name, err)
				continue
			}
			srv.Ingest(man)
			fmt.Fprintf(os.Stderr, "preloaded %s (%s)\n", name, man.Command)
		}
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Printf("spaabench serve: dashboard http://%s/  metrics http://%s/metrics\n", ln.Addr(), ln.Addr())
	return (&http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}).Serve(ln)
}

// postManifest delivers one run manifest to a serve daemon — the soak
// driver's Submit hook.
func postManifest(client *http.Client, baseURL string, man *telemetry.Manifest) error {
	var body bytes.Buffer
	if err := man.Encode(&body); err != nil {
		return err
	}
	resp, err := client.Post(baseURL+"/runs", "application/json", &body)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("POST /runs: %s", resp.Status)
	}
	return nil
}
