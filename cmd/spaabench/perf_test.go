package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestPerfDeterministicByteIdentical: two `spaabench perf -deterministic`
// invocations of the same case must write byte-identical manifests —
// the property that lets BENCH_perf_*.json baselines be committed and
// regenerated on any machine.
func TestPerfDeterministicByteIdentical(t *testing.T) {
	var outs [2][]byte
	for i := range outs {
		dir := t.TempDir()
		code := realMain([]string{"perf", "-tier", "smoke", "-deterministic", "-write-baseline", dir})
		if code != 0 {
			t.Fatalf("exit code %d, want 0", code)
		}
		raw, err := os.ReadFile(filepath.Join(dir, perfBaselineFile("sssp_random_2k")))
		if err != nil {
			t.Fatal(err)
		}
		outs[i] = raw
	}
	if !bytes.Equal(outs[0], outs[1]) {
		t.Error("deterministic perf manifests differ between invocations")
	}
}

// TestPerfGateEndToEnd: the smoke case gates clean against a baseline it
// just wrote, and a seeded slowdown past the wall band exits nonzero.
func TestPerfGateEndToEnd(t *testing.T) {
	dir := t.TempDir()
	if code := realMain([]string{"perf", "-tier", "smoke", "-write-baseline", dir}); code != 0 {
		t.Fatalf("write-baseline exit %d", code)
	}
	if code := realMain([]string{"perf", "-tier", "smoke", "-baseline-dir", dir,
		"-gate", "-wall-tol", "10"}); code != 0 {
		t.Fatalf("clean gate exit %d, want 0", code)
	}
	if code := realMain([]string{"perf", "-tier", "smoke", "-baseline-dir", dir,
		"-gate", "-wall-tol", "0.25", "-slowdown-ms", "500"}); code != 1 {
		t.Fatalf("slowdown gate exit %d, want 1", code)
	}
	// Without -gate the violation is reported but the exit stays zero.
	if code := realMain([]string{"perf", "-tier", "smoke", "-baseline-dir", dir,
		"-wall-tol", "0.25", "-slowdown-ms", "500"}); code != 0 {
		t.Fatalf("non-gated run exit %d, want 0", code)
	}
}

// TestPerfGateMissingBaseline: -gate against an empty baseline dir
// fails; without -gate it only reports.
func TestPerfGateMissingBaseline(t *testing.T) {
	dir := t.TempDir()
	if code := realMain([]string{"perf", "-tier", "smoke", "-baseline-dir", dir, "-gate"}); code != 1 {
		t.Fatalf("missing-baseline gate exit %d, want 1", code)
	}
	if code := realMain([]string{"perf", "-tier", "smoke", "-baseline-dir", dir}); code != 0 {
		t.Fatalf("missing-baseline report exit %d, want 0", code)
	}
}
