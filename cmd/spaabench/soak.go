package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/harness"
	"repro/internal/metrics"
	"repro/internal/telemetry"
)

// cmdSoak drives sustained concurrent load through the instrumented
// stack: -workers goroutines each run -iters seeded workloads from the
// mix, every run feeding a local metrics registry through a
// metrics.Bridge (teed with the per-run manifest recorder). With -addr
// each finished manifest is also POSTed to a running `spaabench serve`,
// whose dashboard and /metrics scrape then show the live traffic.
func cmdSoak(args []string) error {
	fs := flag.NewFlagSet("soak", flag.ExitOnError)
	workers := fs.Int("workers", 8, "concurrent worker goroutines")
	iters := fs.Int("iters", 16, "runs per worker")
	seed := fs.Int64("seed", 1, "campaign seed (derives every run's workload seed)")
	mix := fs.String("mix", strings.Join(harness.SoakWorkloads, ","), "comma-separated workload mix")
	addr := fs.String("addr", "", "a running `spaabench serve` to POST run manifests to (host:port or full base URL)")
	deterministic := fs.Bool("deterministic", false, "emit manifests without wall-clock fields")
	printMetrics := fs.Bool("print-metrics", false, "print the local registry's Prometheus exposition after the campaign")
	if err := fs.Parse(args); err != nil {
		return err
	}

	reg := metrics.NewRegistry()
	bridge := metrics.NewBridge(reg)
	cfg := harness.SoakConfig{
		Workers:       *workers,
		Iters:         *iters,
		Seed:          *seed,
		Mix:           strings.Split(*mix, ","),
		Probes:        bridge,
		Deterministic: *deterministic,
	}
	if *addr != "" {
		base := strings.TrimSuffix(*addr, "/")
		if !strings.Contains(base, "://") {
			base = "http://" + base // serve prints bare host:port; accept it here too
		}
		client := &http.Client{Timeout: 30 * time.Second}
		cfg.Submit = func(man *telemetry.Manifest) error {
			return postManifest(client, base, man)
		}
	}

	rep, err := harness.Soak(cfg)
	if rep != nil {
		fmt.Printf("soak: %d workers x %d iters (mix %s) in %.2fs\n",
			*workers, *iters, *mix, rep.Wall.Seconds())
		fmt.Printf("runs=%d errors=%d rate=%.1f runs/s\n", rep.Runs, rep.Errors, rep.RatePerSecond())
		fmt.Printf("totals: spikes=%d deliveries=%d steps=%d max_queue_depth=%d silent_steps_skipped=%d\n",
			rep.Spikes, rep.Deliveries, rep.Steps, rep.MaxQueueDepth, rep.SilentStepsSkipped)
		fmt.Printf("throughput: %.0f steps/s, %.0f deliveries/s aggregate\n",
			rep.StepsPerSecond(), rep.DeliveriesPerSecond())
		names := make([]string, 0, len(rep.PerWorkload))
		//lint:deterministic keys are sorted below before use
		for name := range rep.PerWorkload {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Printf("  %-8s %d runs\n", name, rep.PerWorkload[name])
		}
	}
	if *printMetrics {
		if werr := reg.WritePrometheus(os.Stdout); werr != nil && err == nil {
			err = werr
		}
	}
	return err
}
