package main

import (
	"flag"
	"fmt"
	"path/filepath"
	"strings"

	"repro/internal/harness"
)

// energyBaselineFile names the committed baseline manifest of a case.
func energyBaselineFile(name string) string {
	return "BENCH_energy_" + name + ".json"
}

// cmdEnergy runs the metered energy sweep — every registered case
// executes its workload with the zero-allocation metering probe on the
// engine step path and a classic comparator priced on the same run —
// and compares each spaa-energy/v1 section against its committed
// BENCH_energy_<case>.json baseline. Every quantity in the section is
// an integral function of the seed and the Table 3 tariffs, so the
// default tolerance is exact; -gate turns any drift into a nonzero
// exit, and -tariff-scale is the CI negative test proving the gate
// trips when the tariff figures move.
func cmdEnergy(args []string) error {
	fs := flag.NewFlagSet("energy", flag.ExitOnError)
	caseList := fs.String("cases", "", "comma-separated case names (default: all registered cases)")
	baselineDir := fs.String("baseline-dir", ".", "directory holding BENCH_energy_<case>.json baselines")
	writeBaseline := fs.String("write-baseline", "", "write fresh manifests as baselines into this directory and exit")
	out := fs.String("out", "", "also write fresh manifests into this directory")
	gate := fs.Bool("gate", false, "exit nonzero when any case drifts from its baseline")
	tol := fs.Float64("tol", 0, "relative tolerance for workload-derived quantities (0 = exact; tariffs always compare exactly)")
	deterministic := fs.Bool("deterministic", false, "zero wall-clock fields (byte-reproducible manifests; baselines are written this way)")
	tariffScale := fs.Int64("tariff-scale", 0, "scale every tariff by this many milli-units (1000 = verbatim; negative test for the gate)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var cases []harness.EnergyCase
	if *caseList != "" {
		for _, name := range strings.Split(*caseList, ",") {
			c, ok := harness.EnergyCaseByName(strings.TrimSpace(name))
			if !ok {
				return fmt.Errorf("unknown energy case %q", name)
			}
			cases = append(cases, c)
		}
	} else {
		cases = harness.EnergyCases
	}

	opts := harness.EnergyOptions{Deterministic: *deterministic, TariffScaleMilli: *tariffScale}
	var deltas []*harness.EnergyDelta
	for _, c := range cases {
		man, err := harness.RunEnergyCase(c, opts)
		if err != nil {
			return err
		}
		if *writeBaseline != "" {
			path := filepath.Join(*writeBaseline, energyBaselineFile(c.Name))
			if err := man.WriteFile(path); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", path)
			continue
		}
		if *out != "" {
			if err := man.WriteFile(filepath.Join(*out, energyBaselineFile(c.Name))); err != nil {
				return err
			}
		}
		base, err := readPerfBaseline(filepath.Join(*baselineDir, energyBaselineFile(c.Name)))
		if err != nil {
			return err
		}
		deltas = append(deltas, harness.CompareEnergy(c.Name, base, man, *tol))
	}
	if *writeBaseline != "" {
		return nil
	}

	fmt.Print(harness.RenderEnergyTable(deltas))
	var failed []string
	for _, d := range deltas {
		if !d.OK() {
			failed = append(failed, d.Name)
			for _, drift := range d.Drifts {
				fmt.Printf("  %s: %s\n", d.Name, drift)
			}
		}
	}
	if *gate && len(failed) > 0 {
		return fmt.Errorf("energy gate failed: %s", strings.Join(failed, ", "))
	}
	return nil
}
