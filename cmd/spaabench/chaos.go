package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/service"
	"repro/internal/trace"
)

// cmdChaos runs a chaos-soak campaign against an in-process resilience
// layer: a seeded overload of mixed sssp/khop queries under a fault
// model, with service-level assertions checked afterwards — zero silent
// wrong answers, shed-rather-than-crash, bounded shed/degrade fractions.
//
// -deterministic runs the virtual-time driver (sequential execution on a
// simulated timeline): the rendered report is byte-identical across
// reruns, which CI exploits with a cmp of two runs. Without it the
// campaign hammers the service from real goroutines (the race-detector
// target). -strict turns assertion failures into a non-zero exit.
func cmdChaos(args []string) error {
	fs := flag.NewFlagSet("chaos", flag.ExitOnError)
	queries := fs.Int("queries", 160, "campaign length")
	seed := fs.Int64("seed", 1, "campaign seed (arrivals, graphs, sources, faults)")
	tenants := fs.Int("tenants", 4, "tenants sharing the service (round-robin)")
	meanGap := fs.Int64("mean-gap", 10, "mean inter-arrival gap in clock units (small = overload)")
	n := fs.Int("n", 48, "vertices per query graph")
	m := fs.Int("m", 192, "edges per query graph")
	k := fs.Int("k", 4, "hop bound (khop queries and the approx rung)")
	budget := fs.Int64("budget", 0, "per-query deadline in simulated steps (0 = unlimited)")
	drop := fs.Float64("drop", 0.02, "fault-model delivery drop probability")
	workers := fs.Int("workers", 2, "service worker slots")
	queueCap := fs.Int("queue", 4, "service queue depth")
	quotaTokens := fs.Int64("quota-tokens", 16, "per-tenant token-bucket capacity (0 disables)")
	quotaRefill := fs.Int64("quota-refill-milli", 100, "quota refill in milli-tokens per clock unit")
	retries := fs.Int("retries", 1, "per-query engine retry budget")
	brThreshold := fs.Int("breaker-threshold", 4, "consecutive engine failures that open the breaker")
	brCooldown := fs.Int64("breaker-cooldown", 64, "breaker cooldown in clock units")
	deterministic := fs.Bool("deterministic", false, "virtual-time driver: byte-reproducible campaign")
	strict := fs.Bool("strict", false, "non-zero exit when the chaos gate trips")
	minShed := fs.Int("min-shed", 1, "strict: require at least this many sheds (overload proof)")
	maxShedFrac := fs.Float64("max-shed-frac", 0.9, "strict: maximum shed fraction of the campaign")
	maxDegradedFrac := fs.Float64("max-degraded-frac", 1.0, "strict: maximum degraded fraction of admitted queries")
	p99Budget := fs.Int64("p99-budget", 0, "strict: p99 latency bound in clock units (0 = unchecked)")
	out := fs.String("out", "", "write the report as JSON to this file")
	traceOut := fs.String("trace-out", "", "trace every query and write the spaa-trace/v1 report as JSON to this file")
	scrape := fs.Bool("scrape", false, "print the campaign's spaa_service_* scrape after the report")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := service.Config{
		Workers:          *workers,
		QueueCap:         *queueCap,
		MaxRetries:       *retries,
		BreakerThreshold: *brThreshold,
		BreakerCooldown:  *brCooldown,
		QuotaTokens:      *quotaTokens,
		QuotaRefillMilli: *quotaRefill,
		Budget:           *budget,
		Model:            faults.Model{DropProb: *drop, Seed: *seed},
		Seed:             *seed,
	}
	if *deterministic {
		cfg.Clock = &service.LogicalClock{}
	}
	var col *trace.Collector
	if *traceOut != "" {
		// Logical units under -deterministic (byte-reproducible output),
		// wall refinements otherwise.
		col = trace.NewCollector(trace.Config{Seed: *seed, Wall: !*deterministic})
		cfg.Trace = col
	}
	svc := service.New(metrics.NewRegistry(), cfg)

	ccfg := service.ChaosConfig{
		Queries:         *queries,
		Seed:            *seed,
		Tenants:         *tenants,
		MeanGap:         *meanGap,
		N:               *n,
		M:               *m,
		K:               *k,
		Budget:          *budget,
		Deterministic:   *deterministic,
		MinShed:         *minShed,
		MaxShedFrac:     *maxShedFrac,
		MaxDegradedFrac: *maxDegradedFrac,
		P99Budget:       *p99Budget,
	}
	rep := service.RunChaos(svc, ccfg)
	fmt.Print(rep.Render())
	if !*deterministic {
		fmt.Printf("  wall %v\n", rep.Wall)
	}
	if *out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	if *traceOut != "" {
		data, err := json.MarshalIndent(col.Report(), "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*traceOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	if *scrape {
		if err := svc.Registry().WritePrometheus(os.Stdout); err != nil {
			return err
		}
	}
	if err := rep.Check(ccfg); err != nil {
		if *strict {
			return err
		}
		fmt.Printf("  (advisory) %v\n", err)
	}
	return nil
}
