package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"time"

	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/service"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// cmdTrace replays a deterministic chaos campaign with per-query tracing
// enabled and renders the tail-sampled traces as ASCII waterfalls: one
// causal timeline per kept query, HTTP-style admission through ladder
// rungs down to engine step totals. Because the campaign runs on the
// virtual clock and the collector on logical units, the spaa-trace/v1
// output is byte-identical across reruns — -gate enforces exactly that
// (double run + cmp), plus the tail-coverage contract: every degraded or
// timed-out query must be present as a sampled trace whose spans cover
// admission → rung → engine run. -drop-degraded deliberately
// misconfigures the sampler so CI can prove the gate trips.
func cmdTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	queries := fs.Int("queries", 160, "campaign length")
	seed := fs.Int64("seed", 1, "campaign seed (arrivals, graphs, sources, faults, trace IDs)")
	tenants := fs.Int("tenants", 4, "tenants sharing the service (round-robin)")
	meanGap := fs.Int64("mean-gap", 10, "mean inter-arrival gap in clock units (small = overload)")
	n := fs.Int("n", 48, "vertices per query graph")
	m := fs.Int("m", 192, "edges per query graph")
	k := fs.Int("k", 4, "hop bound (khop queries and the approx rung)")
	budget := fs.Int64("budget", 256, "per-query deadline in simulated steps (0 = unlimited)")
	drop := fs.Float64("drop", 0.02, "fault-model delivery drop probability")
	workers := fs.Int("workers", 2, "service worker slots")
	queueCap := fs.Int("queue", 4, "service queue depth")
	quotaTokens := fs.Int64("quota-tokens", 16, "per-tenant token-bucket capacity (0 disables)")
	quotaRefill := fs.Int64("quota-refill-milli", 100, "quota refill in milli-tokens per clock unit")
	retries := fs.Int("retries", 1, "per-query engine retry budget")
	capacity := fs.Int("capacity", 512, "sampled-trace ring capacity")
	keepEvery := fs.Int64("keep-every", 8, "keep 1 in N healthy traces (hash-sampled)")
	dropDegraded := fs.Bool("drop-degraded", false, "misconfigure the tail sampler to ignore degraded/timed-out flags (negative-test knob; trips -gate)")
	maxTraces := fs.Int("max-traces", 4, "waterfalls to render (0 = all sampled)")
	gate := fs.Bool("gate", false, "re-run the campaign, require byte-identical trace output and full tail coverage")
	out := fs.String("out", "", "write a spaa-run-manifest/v1 document carrying the trace section to this file")
	chrome := fs.String("chrome", "", "write the sampled traces as Chrome trace_event JSON to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	run := func() (*service.ChaosReport, *trace.Report) {
		col := trace.NewCollector(trace.Config{
			Seed:         *seed,
			Capacity:     *capacity,
			KeepEvery:    *keepEvery,
			DropDegraded: *dropDegraded,
		})
		svc := service.New(metrics.NewRegistry(), service.Config{
			Workers:          *workers,
			QueueCap:         *queueCap,
			MaxRetries:       *retries,
			QuotaTokens:      *quotaTokens,
			QuotaRefillMilli: *quotaRefill,
			Budget:           *budget,
			Model:            faults.Model{DropProb: *drop, Seed: *seed},
			Seed:             *seed,
			Clock:            &service.LogicalClock{},
			Trace:            col,
		})
		rep := service.RunChaos(svc, service.ChaosConfig{
			Queries:       *queries,
			Seed:          *seed,
			Tenants:       *tenants,
			MeanGap:       *meanGap,
			N:             *n,
			M:             *m,
			K:             *k,
			Budget:        *budget,
			Deterministic: true,
		})
		return rep, col.Report()
	}

	rep, tr := run()
	fmt.Print(tr.Render(*maxTraces))
	fmt.Printf("campaign: %d queries, %d admitted, %d shed, %d degraded, %d timed out\n",
		rep.Queries, rep.Admitted, rep.Shed, rep.Degraded, rep.TimedOut)

	if *out != "" {
		man := telemetry.NewManifest("spaabench", "trace")
		man.SetConfig("queries", *queries)
		man.SetConfig("seed", *seed)
		man.SetConfig("budget", *budget)
		man.Trace = tr
		man.Finalize(time.Time{}, 0, telemetry.ManifestOptions{Deterministic: true})
		if err := man.WriteFile(*out); err != nil {
			return err
		}
	}
	if *chrome != "" {
		tracer := telemetry.NewTracer()
		tracer.AddTraceReport(tr)
		if err := tracer.WriteFile(*chrome); err != nil {
			return err
		}
	}

	if *gate {
		rep2, tr2 := run()
		b1, err := json.Marshal(tr)
		if err != nil {
			return err
		}
		b2, err := json.Marshal(tr2)
		if err != nil {
			return err
		}
		if !bytes.Equal(b1, b2) {
			return fmt.Errorf("trace gate: two deterministic runs produced different spaa-trace/v1 output (%d vs %d bytes)", len(b1), len(b2))
		}
		if err := service.VerifyTraceCoverage(rep, tr); err != nil {
			return fmt.Errorf("trace gate: %w", err)
		}
		if err := service.VerifyTraceCoverage(rep2, tr2); err != nil {
			return fmt.Errorf("trace gate: %w", err)
		}
		fmt.Printf("trace gate: OK (%d bytes, %d sampled, %d tail traces covered)\n",
			len(b1), tr.Sampled, len(rep.TraceTailIDs))
	}
	return nil
}
