package main

import (
	"os"
	"path/filepath"
	"testing"
)

// checkProfile asserts path holds a non-empty gzip stream — the pprof
// container format both profile kinds use.
func checkProfile(t *testing.T, path string) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("profile missing: %v", err)
	}
	if len(raw) < 2 || raw[0] != 0x1f || raw[1] != 0x8b {
		t.Errorf("%s is not a gzipped pprof profile (%d bytes, magic %x)",
			path, len(raw), raw[:min(2, len(raw))])
	}
}

// TestFailingRunStillWritesProfiles is the profile-flush regression
// test: a subcommand that errors out after profiling has started (here:
// an unknown -algo rejected after o.begin) must still leave valid
// -cpuprofile/-memprofile files behind, because realMain flushes
// profiles before deciding the exit status.
func TestFailingRunStillWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	code := realMain([]string{"sssp", "-n", "16", "-m", "32",
		"-algo", "definitely-not-an-algo",
		"-cpuprofile", cpu, "-memprofile", mem})
	if code != 1 {
		t.Fatalf("exit code %d, want 1", code)
	}
	checkProfile(t, cpu)
	checkProfile(t, mem)

	activeObsMu.Lock()
	left := len(activeObs)
	activeObsMu.Unlock()
	if left != 0 {
		t.Errorf("%d obs bundles still registered after flush", left)
	}
}

// TestSucceedingRunWritesProfilesOnce checks the happy path through the
// same exit machinery: finish() finalizes the profiles, and the
// subsequent flushProfiles call must not rewrite (and thereby truncate)
// them.
func TestSucceedingRunWritesProfilesOnce(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	code := realMain([]string{"sssp", "-n", "16", "-m", "32",
		"-cpuprofile", cpu, "-memprofile", mem})
	if code != 0 {
		t.Fatalf("exit code %d, want 0", code)
	}
	checkProfile(t, cpu)
	checkProfile(t, mem)
}

// TestUsageExitCode pins the no-arguments and unknown-command paths.
func TestUsageExitCode(t *testing.T) {
	if code := realMain(nil); code != 2 {
		t.Errorf("no-args exit = %d, want 2", code)
	}
	if code := realMain([]string{"not-a-command"}); code != 2 {
		t.Errorf("unknown-command exit = %d, want 2", code)
	}
}

// TestDeterministicManifestFlag runs the same seeded workload twice with
// -deterministic; the emitted manifests must be byte-identical.
func TestDeterministicManifestFlag(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.json")
	b := filepath.Join(dir, "b.json")
	for _, path := range []string{a, b} {
		if code := realMain([]string{"sssp", "-n", "32", "-m", "96", "-seed", "3",
			"-deterministic", "-metrics", path}); code != 0 {
			t.Fatalf("sssp run failed with code %d", code)
		}
	}
	ab, err := os.ReadFile(a)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := os.ReadFile(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(ab) != string(bb) {
		t.Errorf("-deterministic manifests differ:\n%s\nvs\n%s", ab, bb)
	}
}
