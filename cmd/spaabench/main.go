// Command spaabench regenerates the tables and figures of "Provable
// Advantages for Graph Algorithms in Spiking Neural Networks" (SPAA 2021)
// from the reproduction library.
//
// Usage:
//
//	spaabench table1 [-sizes 64,128,256,512] [-density 4] [-u 8] [-k 8] [-c 4] [-skip-movement]
//	spaabench table2 [-d 2,4,8,16,32] [-lambda 4,8,16]
//	spaabench table3
//	spaabench figures
//	spaabench experiments            # full EXPERIMENTS.md markdown to stdout
//	spaabench sssp -n 256 -m 1024 [-u 8] [-seed 1] [-src 0] [-dst -1] [-algo spiking|dijkstra|poly|crossbar|khop] [-k 8]
//	spaabench gen -n 64 -m 256 [-u 8] [-seed 1]   # edge list to stdout
//	spaabench raster -n 16 -m 48                  # ASCII spike raster of the SSSP wavefront
//	spaabench flow -layers 4 -width 6             # tidal max flow with sweep accounting
//	spaabench congest -n 64 -m 256                # distributed BFS/SSSP with bit accounting
//	spaabench dot -n 12 -m 30 -dst 5              # Graphviz DOT with highlighted shortest path
//	spaabench timeline -n 16 -m 48                # raster plus per-step telemetry sparklines
//	spaabench validate <netlist>                  # static Definition 1-2 checks ("-" = stdin)
//	spaabench faults [-rates 0,0.01] [-trials 20] [-k 3]  # fault-injection sweep + degradation curve
//	spaabench why -n 64 -m 256 -dst 5 [-save log.jsonl]   # causal proof tree behind a spike
//	spaabench replay <log.jsonl>                  # re-execute a provenance log, verify bit-identical
//	spaabench regress [-tol 0.02] BENCH_*.json    # diff fresh runs against committed baselines
//	spaabench serve [-addr 127.0.0.1:9090]        # live metrics daemon: /metrics, dashboard, SSE
//	spaabench soak [-workers 8] [-iters 16] [-addr URL]  # concurrent load driver
//	spaabench perf [-tier small] [-gate]          # benchmark tier vs BENCH_perf_*.json baselines
//	spaabench energy [-gate]                      # metered energy sweep vs BENCH_energy_*.json baselines
//	spaabench trace [-gate]                       # traced chaos replay: ASCII waterfalls + determinism/coverage gate
//
// The sssp, table1, flow, congest, fleet, and timeline subcommands also
// accept observability flags: -metrics out.json writes a JSON run
// manifest (the BENCH_*.json format; add -deterministic for
// byte-reproducible output), -trace out.json writes Chrome trace_event
// JSON viewable in Perfetto, and -cpuprofile / -memprofile write pprof
// profiles. `why -save` writes a spaa-provenance/v1 causal spike log
// that `replay` re-executes; `regress` is the CI gate over the
// committed BENCH_*.json manifests. `serve` exposes a Prometheus-style
// /metrics endpoint plus a live dashboard; `soak` drives seeded
// concurrent load through the instrumented stack and can stream its run
// manifests to a serve daemon; `perf` runs the named benchmark tier and
// gates counter-derived throughput metrics (exactly) and wall time
// (within a band) against the committed BENCH_perf_*.json baselines;
// `energy` meters per-spike/per-delivery/per-idle-step energy across
// every Table 3 platform alongside a classic comparator on the same
// run, gated against the committed BENCH_energy_*.json baselines.
// See docs/OBSERVABILITY.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/classic"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/crossbar"
	"repro/internal/faults"
	"repro/internal/fleet"
	"repro/internal/flow"
	"repro/internal/graph"
	"repro/internal/harness"
	"repro/internal/platform"
	"repro/internal/snn"
	"repro/internal/telemetry"
)

func main() {
	os.Exit(realMain(os.Args[1:]))
}

// realMain is the single exit path: every subcommand returns here, and
// profiling outputs are flushed before the process status is decided —
// a failing run (nonzero exit) still emits its -cpuprofile/-memprofile
// files, where a bare os.Exit inside the dispatch would have dropped
// them.
func realMain(argv []string) int {
	if len(argv) < 1 {
		usage()
		return 2
	}
	cmd, args := argv[0], argv[1:]
	var err error
	switch cmd {
	case "table1":
		err = cmdTable1(args)
	case "table2":
		err = cmdTable2(args)
	case "table3":
		fmt.Print(platform.Render())
	case "figures":
		fmt.Print(harness.RunFigures())
	case "experiments":
		err = cmdExperiments(args)
	case "sssp":
		err = cmdSSSP(args)
	case "gen":
		err = cmdGen(args)
	case "raster":
		err = cmdRaster(args)
	case "timeline":
		err = cmdTimeline(args)
	case "flow":
		err = cmdFlow(args)
	case "congest":
		err = cmdCongest(args)
	case "dot":
		err = cmdDOT(args)
	case "crossover":
		err = cmdCrossover(args)
	case "fleet":
		err = cmdFleet(args)
	case "faults":
		err = cmdFaults(args)
	case "why":
		err = cmdWhy(args)
	case "replay":
		err = cmdReplay(args)
	case "regress":
		err = cmdRegress(args)
	case "verify":
		err = cmdVerify(args)
	case "validate":
		err = cmdValidate(args)
	case "serve":
		err = cmdServe(args)
	case "soak":
		err = cmdSoak(args)
	case "perf":
		err = cmdPerf(args)
	case "energy":
		err = cmdEnergy(args)
	case "chaos":
		err = cmdChaos(args)
	case "trace":
		err = cmdTrace(args)
	default:
		usage()
		return 2
	}
	flushProfiles()
	if err != nil {
		fmt.Fprintln(os.Stderr, "spaabench:", err)
		return 1
	}
	return 0
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: spaabench {table1|table2|table3|figures|experiments|sssp|gen|raster|timeline|flow|congest|dot|crossover|fleet|faults|why|replay|regress|verify|validate|serve|soak|perf|energy|chaos|trace} [flags]")
	fmt.Fprintln(os.Stderr, "robustness: faults [-rates 0,0.01,...] [-trials 20] [-k 3] [-retries 3] [-strict] [-metrics out.json]")
	fmt.Fprintln(os.Stderr, "chaos: chaos [-queries 160] [-seed 1] [-deterministic] [-strict] [-drop 0.02] [-budget 0] [-workers 2] [-queue 4] [-quota-tokens 16] [-out report.json] [-trace-out trace.json]")
	fmt.Fprintln(os.Stderr, "tracing: trace [-queries 160] [-seed 1] [-budget 256] [-gate] [-max-traces 4] [-out manifest.json] [-chrome trace.json] [-drop-degraded]")
	fmt.Fprintln(os.Stderr, "observability (sssp, table1, flow, congest, fleet, timeline): -metrics out.json [-deterministic] -trace out.json -cpuprofile out.pprof -memprofile out.pprof")
	fmt.Fprintln(os.Stderr, "forensics: why -dst N [-save log.jsonl] | replay log.jsonl | regress [-tol 0.02] BENCH_*.json")
	fmt.Fprintln(os.Stderr, "live: serve [-addr 127.0.0.1:9090] [-preload 'BENCH_*.json'] | soak [-workers 8] [-iters 16] [-mix sssp,congest,fleet,table1] [-addr http://127.0.0.1:9090]")
	fmt.Fprintln(os.Stderr, "perf: perf [-tier smoke|small|large|all] [-cases a,b] [-baseline-dir .] [-gate] [-tol 0] [-wall-tol 0.5] [-deterministic] [-write-baseline DIR] [-out DIR] [-slowdown-ms 0]")
	fmt.Fprintln(os.Stderr, "energy: energy [-cases a,b] [-baseline-dir .] [-gate] [-tol 0] [-deterministic] [-write-baseline DIR] [-out DIR] [-tariff-scale 1000]")
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad integer list %q: %w", s, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func cmdTable1(args []string) error {
	fs := flag.NewFlagSet("table1", flag.ExitOnError)
	sizes := fs.String("sizes", "64,128,256,512", "comma-separated vertex counts")
	density := fs.Int("density", 4, "edges per vertex")
	u := fs.Int64("u", 8, "maximum edge length U")
	k := fs.Int("k", 8, "hop bound")
	c := fs.Int("c", 4, "DISTANCE-model registers")
	seed := fs.Int64("seed", 1, "workload seed")
	skip := fs.Bool("skip-movement", false, "skip the DISTANCE/crossbar half")
	o := addObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	ns, err := parseInts(*sizes)
	if err != nil {
		return err
	}
	if err := o.begin("table1"); err != nil {
		return err
	}
	rep := runTable1(o, harness.Table1Config{
		Sizes: ns, Density: *density, U: *u, K: *k, C: *c, Seed: *seed,
		SkipMovement: *skip,
	})
	fmt.Print(rep.Render())
	return o.finish()
}

func cmdTable2(args []string) error {
	fs := flag.NewFlagSet("table2", flag.ExitOnError)
	ds := fs.String("d", "2,4,8,16,32", "input counts")
	ls := fs.String("lambda", "4,8,16", "bit widths")
	if err := fs.Parse(args); err != nil {
		return err
	}
	dd, err := parseInts(*ds)
	if err != nil {
		return err
	}
	ll, err := parseInts(*ls)
	if err != nil {
		return err
	}
	fmt.Print(harness.RenderTable2(harness.RunTable2(dd, ll)))
	return nil
}

func cmdExperiments(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ExitOnError)
	quick := fs.Bool("quick", false, "smaller sweep (faster)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := harness.DefaultTable1Config()
	if *quick {
		cfg.Sizes = []int{32, 64, 128}
	}
	fmt.Print(harness.ExperimentsMarkdown(cfg, faults.ExperimentsSection()))
	return nil
}

func cmdSSSP(args []string) error {
	fs := flag.NewFlagSet("sssp", flag.ExitOnError)
	n := fs.Int("n", 256, "vertices")
	m := fs.Int("m", 1024, "edges")
	u := fs.Int64("u", 8, "max edge length")
	seed := fs.Int64("seed", 1, "seed")
	src := fs.Int("src", 0, "source vertex")
	dst := fs.Int("dst", -1, "destination (-1 = all)")
	k := fs.Int("k", 8, "hop bound (khop algo)")
	algo := fs.String("algo", "spiking", "spiking|dijkstra|poly|crossbar|khop")
	in := fs.String("in", "", "read graph from edge-list file instead of generating")
	o := addObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := o.begin("sssp"); err != nil {
		return err
	}
	var g *graph.Graph
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		g, err = graph.ReadEdgeList(f)
		if err != nil {
			return err
		}
	} else {
		g = graph.RandomGnm(*n, *m, graph.Uniform(*u), *seed, true)
	}
	o.setGraph(g, *seed, "random")
	o.Man.SetConfig("algo", *algo).SetConfig("src", *src).SetConfig("dst", *dst)

	report := func(dist []int64, extra string) {
		reached := 0
		var maxD int64
		for _, d := range dist {
			if d < graph.Inf {
				reached++
				if d > maxD {
					maxD = d
				}
			}
		}
		fmt.Printf("graph n=%d m=%d U=%d  reached=%d  L=%d  %s\n",
			g.N(), g.M(), g.MaxLen(), reached, maxD, extra)
		if *dst >= 0 {
			d := "inf"
			if dist[*dst] < graph.Inf {
				d = fmt.Sprintf("%d", dist[*dst])
			}
			fmt.Printf("dist(%d -> %d) = %s\n", *src, *dst, d)
		}
	}

	switch *algo {
	case "spiking":
		r := runSSSPSpiking(o, g, *seed, *src, *dst)
		report(r.Dist, fmt.Sprintf("spike-time=%d neurons=%d spikes=%d deliveries=%d",
			r.SpikeTime, r.Neurons, r.Stats.Spikes, r.Stats.Deliveries))
	case "dijkstra":
		r := classic.Dijkstra(g, *src)
		report(r.Dist, fmt.Sprintf("heap-ops=%d", r.Ops))
		o.Rec.Add("heap_ops", r.Ops)
	case "poly":
		r := core.SSSPPoly(g, *src)
		report(r.Dist, fmt.Sprintf("rounds=%d spike-time=%d neurons=%d",
			r.Rounds, r.SpikeTime, r.NeuronCount))
		o.Rec.Add("rounds", int64(r.Rounds))
		o.Rec.Add("neurons", int64(r.NeuronCount))
		o.Tr.Span("phase", "poly-rounds", 0, r.SpikeTime)
	case "khop":
		r := core.KHopTTL(g, *src, *dst, *k)
		report(r.Dist, fmt.Sprintf("k=%d lambda=%d broadcasts=%d neurons=%d",
			*k, r.Lambda, r.Broadcasts, r.NeuronCount))
		o.Rec.Add("broadcasts", int64(r.Broadcasts))
		o.Rec.Add("neurons", int64(r.NeuronCount))
	case "crossbar":
		cb := crossbar.New(g.N())
		if _, err := cb.Embed(g); err != nil {
			return err
		}
		r := cb.SSSP(*src)
		report(r.Dist, fmt.Sprintf("scale=%d host-neurons=%d host-time=%d",
			r.Scale, r.HostNeurons, r.HostSpikeTime))
		o.Rec.Add("crossbar_scale", r.Scale)
		o.Rec.Add("host_neurons", int64(r.HostNeurons))
		o.Tr.Span("phase", "crossbar-host", 0, r.HostSpikeTime)
	default:
		return fmt.Errorf("unknown algo %q", *algo)
	}
	return o.finish()
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	n := fs.Int("n", 64, "vertices")
	m := fs.Int("m", 256, "edges")
	u := fs.Int64("u", 8, "max edge length")
	seed := fs.Int64("seed", 1, "seed")
	kind := fs.String("kind", "random", "random|grid|ring|layered|complete|scalefree")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var g *graph.Graph
	dist := graph.Uniform(*u)
	switch *kind {
	case "random":
		g = graph.RandomGnm(*n, *m, dist, *seed, true)
	case "grid":
		side := 1
		for side*side < *n {
			side++
		}
		g = graph.Grid(side, side, dist, *seed)
	case "ring":
		g = graph.Ring(*n, dist, *seed)
	case "layered":
		g = graph.Layered(*n/8+1, 8, dist, *seed)
	case "complete":
		g = graph.Complete(*n, dist, *seed)
	case "scalefree":
		g = graph.PreferentialAttachment(*n, 2, dist, *seed)
	default:
		return fmt.Errorf("unknown kind %q", *kind)
	}
	return graph.WriteEdgeList(os.Stdout, g)
}

func cmdRaster(args []string) error {
	fs := flag.NewFlagSet("raster", flag.ExitOnError)
	n := fs.Int("n", 16, "vertices")
	m := fs.Int("m", 48, "edges")
	u := fs.Int64("u", 6, "max edge length")
	seed := fs.Int64("seed", 1, "seed")
	src := fs.Int("src", 0, "source vertex")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g := graph.RandomGnm(*n, *m, graph.Uniform(*u), *seed, true)
	fmt.Print(harness.SSSPRaster(g, *src))
	return nil
}

func cmdTimeline(args []string) error {
	fs := flag.NewFlagSet("timeline", flag.ExitOnError)
	n := fs.Int("n", 16, "vertices")
	m := fs.Int("m", 48, "edges")
	u := fs.Int64("u", 6, "max edge length")
	seed := fs.Int64("seed", 1, "seed")
	src := fs.Int("src", 0, "source vertex")
	o := addObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := o.begin("timeline"); err != nil {
		return err
	}
	g := graph.RandomGnm(*n, *m, graph.Uniform(*u), *seed, true)
	o.setGraph(g, *seed, "random")
	o.Man.SetConfig("src", *src)
	out, rec := harness.SSSPTimeline(g, *src)
	fmt.Print(out)
	// SSSPTimeline owns the probe for its run; adopt its recorder so
	// -metrics / -trace export the same series the sparklines show.
	o.Rec = rec
	return o.finish()
}

func cmdFlow(args []string) error {
	fs := flag.NewFlagSet("flow", flag.ExitOnError)
	layers := fs.Int("layers", 4, "layer count")
	width := fs.Int("width", 6, "layer width")
	u := fs.Int64("u", 20, "max capacity")
	seed := fs.Int64("seed", 1, "seed")
	o := addObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := o.begin("flow"); err != nil {
		return err
	}
	g := graph.Layered(*layers, *width, graph.Uniform(*u), *seed)
	s, t := 0, g.N()-1
	r := flow.Tidal(g, s, t)
	d := flow.Dinic(g, s, t)
	fmt.Printf("layered network n=%d m=%d\n", g.N(), g.M())
	fmt.Printf("tidal max flow  %d (dinic: %d)\n", r.Value, d)
	fmt.Printf("phases=%d cycles=%d sweep-rounds=%d sweep-messages=%d fallbacks=%d\n",
		r.Phases, r.Cycles, r.SweepRounds, r.SweepMessages, r.FallbackAugments)
	o.setGraph(g, *seed, "layered")
	o.Man.SetConfig("layers", *layers).SetConfig("width", *width)
	o.Rec.Add("flow_value", r.Value)
	o.Rec.Add("flow_phases", int64(r.Phases))
	o.Rec.Add("flow_cycles", int64(r.Cycles))
	o.Rec.Add("flow_sweep_rounds", int64(r.SweepRounds))
	o.Rec.Add("flow_sweep_messages", int64(r.SweepMessages))
	o.Rec.Add("flow_fallback_augments", int64(r.FallbackAugments))
	return o.finish()
}

func cmdCongest(args []string) error {
	fs := flag.NewFlagSet("congest", flag.ExitOnError)
	n := fs.Int("n", 64, "vertices")
	m := fs.Int("m", 256, "edges")
	u := fs.Int64("u", 8, "max edge length")
	seed := fs.Int64("seed", 1, "seed")
	o := addObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := o.begin("congest"); err != nil {
		return err
	}
	g := graph.RandomGnm(*n, *m, graph.Uniform(*u), *seed, true)
	r := runCongest(o, g, *seed)
	fmt.Printf("graph n=%d m=%d\n", g.N(), g.M())
	fmt.Printf("BFS:  rounds=%d messages=%d max-bits=%d\n", r.BFSRounds, r.BFSMessages, r.BFSMaxBits)
	fmt.Printf("SSSP: rounds=%d messages=%d max-bits=%d total-bits=%d matches-dijkstra=%v\n",
		r.SSSPRounds, r.SSSPMessages, r.SSSPMaxBits, r.SSSPTotalBits, r.MatchesDijkstra)
	return o.finish()
}

func cmdDOT(args []string) error {
	fs := flag.NewFlagSet("dot", flag.ExitOnError)
	n := fs.Int("n", 12, "vertices")
	m := fs.Int("m", 30, "edges")
	u := fs.Int64("u", 9, "max edge length")
	seed := fs.Int64("seed", 1, "seed")
	dst := fs.Int("dst", -1, "highlight shortest path to this vertex")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g := graph.RandomGnm(*n, *m, graph.Uniform(*u), *seed, true)
	var highlight []int
	if *dst >= 0 {
		r, err := core.SSSP(g, 0, -1)
		if err != nil {
			return err
		}
		highlight = r.Path(*dst)
	}
	return graph.WriteDOT(os.Stdout, g, "spaa", highlight)
}

func cmdCrossover(args []string) error {
	fs := flag.NewFlagSet("crossover", flag.ExitOnError)
	n := fs.Int64("n", 256, "vertices")
	m := fs.Int64("m", 1024, "edges")
	u := fs.Int64("u", 8, "max edge length")
	c := fs.Int64("c", 1, "registers")
	l := fs.Int64("l", 16, "path length L")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p := cost.Params{N: *n, M: *m, K: 1, L: *l, U: *u, Alpha: 4, C: *c}
	fmt.Printf("advantage windows at n=%d m=%d U=%d c=%d L=%d (cost-model units):\n", *n, *m, *u, *c, *l)
	if k := cost.CrossoverK(p, 1<<30); k > 0 {
		fmt.Printf("  k-hop (no movement): spiking wins for k >= %d (log2(nU) = %.1f)\n",
			k, logf(float64(*n**u)))
	} else {
		fmt.Println("  k-hop (no movement): no crossover in range")
	}
	if lmax := cost.CrossoverL(p, 1<<40); lmax > 0 {
		fmt.Printf("  pseudopolynomial SSSP (no movement): spiking wins for L <= %d\n", lmax)
	} else {
		fmt.Println("  pseudopolynomial SSSP (no movement): window closed (m too large)")
	}
	if mm := cost.CrossoverMovementM(p, 10, 1<<40); mm > 0 {
		fmt.Printf("  movement regime: 10x advantage from m >= %d\n", mm)
	}
	return nil
}

func logf(x float64) float64 {
	l := 0.0
	for x >= 2 {
		x /= 2
		l++
	}
	return l
}

func cmdFleet(args []string) error {
	fs := flag.NewFlagSet("fleet", flag.ExitOnError)
	rows := fs.Int("rows", 12, "grid rows")
	cols := fs.Int("cols", 12, "grid cols")
	capacity := fs.Int("capacity", 24, "neurons per chip")
	o := addObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := o.begin("fleet"); err != nil {
		return err
	}
	g := graph.Grid(*rows, *cols, graph.Unit, 1)
	o.setGraph(g, 1, "grid")
	o.Man.SetConfig("rows", *rows).SetConfig("cols", *cols).SetConfig("capacity", *capacity)
	r, err := core.SSSP(g, 0, -1, o.snnProbes()...)
	if err != nil {
		return err
	}
	dist := r.Dist
	bfs := fleet.PartitionBFS(g, *capacity)
	rr := fleet.PartitionRoundRobin(g, *capacity)
	// Only the BFS placement feeds the per-chip probe series; the
	// round-robin contrast run is summarized in counters below.
	tb := fleet.AnalyzeSSSP(g, bfs, dist, o.fleetProbes()...)
	tr := fleet.AnalyzeSSSP(g, rr, dist)
	loihiPJ := 23.6
	fmt.Printf("grid %dx%d on chips of %d neurons (%d chips)\n", *rows, *cols, *capacity, bfs.Chips)
	fmt.Printf("  BFS placement:         cut=%4d  intra=%5d inter=%4d  energy=%.3g J (board penalty 100x)\n",
		tb.CutEdges, tb.IntraChip, tb.InterChip, tb.EnergyJoules(loihiPJ, 100))
	fmt.Printf("  round-robin placement: cut=%4d  intra=%5d inter=%4d  energy=%.3g J\n",
		tr.CutEdges, tr.IntraChip, tr.InterChip, tr.EnergyJoules(loihiPJ, 100))
	o.Man.Stats = telemetry.StatsFrom(r.Stats)
	o.Rec.Add("chips", int64(bfs.Chips))
	o.Rec.Add("bfs_cut_edges", int64(tb.CutEdges))
	o.Rec.Add("roundrobin_cut_edges", int64(tr.CutEdges))
	o.Rec.Add("roundrobin_inter_chip", tr.InterChip)
	return o.finish()
}

// cmdValidate statically verifies a netlist file against the paper's
// Definition 1-2 invariants without simulating it (the compile-time
// counterpart is `go run ./cmd/spaavet ./...`). Exit is nonzero when any
// error-level violation is present; warnings are reported but tolerated
// unless -strict is set.
func cmdValidate(args []string) error {
	fs := flag.NewFlagSet("validate", flag.ExitOnError)
	strict := fs.Bool("strict", false, "treat warnings as failures")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: spaabench validate [-strict] <netlist-file | ->")
	}
	in := os.Stdin
	if name := fs.Arg(0); name != "-" {
		f, err := os.Open(name)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	info, violations, err := snn.LintNetlist(in)
	if err != nil {
		return err
	}
	fmt.Printf("netlist: %d neurons, %d synapses, %d induced spikes, %d terminals (rule=%s record=%v)\n",
		info.Neurons, info.Synapses, info.Induced, info.Terminals, info.Rule, info.Record)
	errors, warnings := 0, 0
	for _, v := range violations {
		fmt.Println(" ", v)
		if v.Severity == snn.SevError {
			errors++
		} else {
			warnings++
		}
	}
	if errors > 0 || (*strict && warnings > 0) {
		return fmt.Errorf("%d error(s), %d warning(s)", errors, warnings)
	}
	if warnings > 0 {
		fmt.Printf("ok with %d warning(s)\n", warnings)
	} else {
		fmt.Println("ok: all Definition 1-2 invariants hold")
	}
	return nil
}

func cmdVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "workload seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	out, failed := harness.RenderChecks(harness.Verify(*seed))
	fmt.Print(out)
	if failed {
		return fmt.Errorf("verification failed")
	}
	fmt.Println("all headline claims verified")
	return nil
}
