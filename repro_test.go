package repro

import (
	"bytes"
	"strings"
	"testing"
)

func TestFacadeQuickstartFlow(t *testing.T) {
	g := RandomGraph(64, 256, Uniform(8), 1)
	spiking := SpikingSSSP(g, 0, -1)
	reference := Dijkstra(g, 0)
	for v := 0; v < g.N(); v++ {
		if spiking.Dist[v] != reference.Dist[v] {
			t.Fatalf("dist[%d]: spiking %d vs dijkstra %d", v, spiking.Dist[v], reference.Dist[v])
		}
	}
}

func TestFacadeKHopFlow(t *testing.T) {
	g := RandomGraph(40, 160, Uniform(6), 2)
	k := 5
	ttl := SpikingKHopSSSP(g, 0, -1, k)
	poly := SpikingKHopPoly(g, 0, k)
	bf := BellmanFordKHop(g, 0, k, false)
	for v := 0; v < g.N(); v++ {
		if ttl.Dist[v] != bf.Dist[v] || poly.Dist[v] != bf.Dist[v] {
			t.Fatalf("k-hop mismatch at %d: ttl %d poly %d bf %d",
				v, ttl.Dist[v], poly.Dist[v], bf.Dist[v])
		}
	}
}

func TestFacadeCrossbarFlow(t *testing.T) {
	g := RandomGraph(10, 40, Uniform(4), 3)
	cb := NewCrossbar(10)
	if _, err := cb.Embed(g); err != nil {
		t.Fatal(err)
	}
	got := cb.SSSP(0)
	want := Dijkstra(g, 0)
	for v := 0; v < g.N(); v++ {
		if got.Dist[v] != want.Dist[v] {
			t.Fatalf("crossbar dist[%d] = %d, want %d", v, got.Dist[v], want.Dist[v])
		}
	}
}

func TestFacadeCircuits(t *testing.T) {
	b := NewCircuitBuilder(true)
	m := NewMaxWiredOR(b, 3, 4)
	if got := m.Compute(b, []uint64{5, 11, 2}, 0); got != 11 {
		t.Fatalf("facade max = %d", got)
	}
	b2 := NewCircuitBuilder(true)
	a := NewAdderCLA(b2, 8)
	if got := a.Compute(b2, 100, 55, 0); got != 155 {
		t.Fatalf("facade add = %d", got)
	}
}

func TestFacadeNetwork(t *testing.T) {
	n := NewNetwork(NetworkConfig{Rule: FireGTE})
	a := n.AddNeuron(GateNeuron(1))
	z := n.AddNeuron(IntegratorNeuron(2))
	n.Connect(a, z, 1, 3)
	n.InduceSpike(a, 0)
	n.InduceSpike(a, 1)
	n.Run(10)
	if n.FirstSpike(z) != 4 {
		t.Fatalf("integrator fired at %d", n.FirstSpike(z))
	}
}

func TestFacadeNGA(t *testing.T) {
	g := RingGraph(4, Unit, 0)
	out := MatVecPower(g, []int64{1, 0, 0, 0}, 4, 8)
	// One full trip around the unit ring returns the indicator.
	if out[0] != 1 || out[1] != 0 {
		t.Fatalf("ring matvec %v", out)
	}
}

func TestFacadeDistanceModel(t *testing.T) {
	cost := ScanInputMovement(1024, 4, RegistersSpread)
	if float64(cost) < ScanLowerBound(1024, 4) {
		t.Fatalf("scan %d below bound", cost)
	}
	g := RandomGraph(20, 80, Uniform(5), 4)
	r := DistanceBellmanFordKHop(g, 0, 3, 2, RegistersSpread)
	if float64(r.Movement) < KHopLowerBound(g.M(), 2, 3) {
		t.Fatalf("BF movement below bound")
	}
}

func TestFacadeCostAndPlatforms(t *testing.T) {
	rows := Table1(CostParams{N: 128, M: 512, K: 8, L: 20, U: 4, Alpha: 5, C: 2})
	if len(rows) != 8 {
		t.Fatalf("%d cost rows", len(rows))
	}
	if len(Table3()) != 5 {
		t.Fatalf("platform count")
	}
	if !strings.Contains(RenderTable3(), "Loihi") {
		t.Fatal("render missing Loihi")
	}
}

func TestFacadeGraphIO(t *testing.T) {
	g := GridGraph(3, 3, Unit, 0)
	var buf bytes.Buffer
	if err := WriteGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	h, err := ReadGraph(&buf)
	if err != nil || h.N() != g.N() || h.M() != g.M() {
		t.Fatalf("round trip: %v", err)
	}
}

func TestFacadeCompiledTTL(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(0, 2, 5)
	ct := CompileKHopSSSP(g, 0, 2)
	dist, _ := ct.Run()
	if dist[2] != 2 {
		t.Fatalf("compiled dist %d, want 2", dist[2])
	}
}

func TestFacadeApprox(t *testing.T) {
	g := RandomGraph(20, 80, Uniform(6), 9)
	r := SpikingApproxKHop(g, 0, 4, 0)
	exact := BellmanFordKHop(g, 0, 4, false)
	for v := 0; v < g.N(); v++ {
		if exact.Dist[v] >= Inf {
			continue
		}
		if r.Dist[v] > (1+r.Epsilon)*float64(exact.Dist[v])+1e-9 {
			t.Fatalf("approx[%d] = %v above (1+eps)·%d", v, r.Dist[v], exact.Dist[v])
		}
	}
}

func TestFacadeGenerators(t *testing.T) {
	if CompleteGraph(5, Unit, 0).M() != 20 {
		t.Fatal("complete graph")
	}
	if PathGraph(5, Unit, 0).M() != 4 {
		t.Fatal("path graph")
	}
	if LayeredGraph(2, 3, Unit, 0).N() != 8 {
		t.Fatal("layered graph")
	}
	if ScaleFreeGraph(10, 1, Unit, 0).N() != 10 {
		t.Fatal("scale-free graph")
	}
	if MatVecMovement(8, 1, RegistersClustered) <= 0 {
		t.Fatal("matvec movement")
	}
}
