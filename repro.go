// Package repro is a Go reproduction of "Provable Advantages for Graph
// Algorithms in Spiking Neural Networks" (Aimone, Ho, Parekh, Phillips,
// Pinar, Severa, Wang — SPAA 2021).
//
// The package is a facade over the implementation packages:
//
//   - a discrete-time leaky-integrate-and-fire SNN simulator (Defs 1-3),
//   - threshold-gate circuits: max, min, adders, decrement, latch, delay
//     gadget (Section 5, Figures 1/3/4/5, Table 2),
//   - the spiking shortest-path algorithms: pseudopolynomial SSSP
//     (Section 3), k-hop TTL and polynomial k-hop (Section 4), and the
//     (1+o(1))-approximation (Section 7) — plus a version of the k-hop
//     algorithm compiled all the way down to threshold gates,
//   - the crossbar (stacked grid) host topology and graph embedding
//     (Section 4.4, Figure 2),
//   - the DISTANCE data-movement machine and movement-instrumented
//     conventional algorithms with the Theorem 6.1/6.2 lower bounds,
//   - conventional baselines (Dijkstra, k-hop Bellman-Ford),
//   - the Table 1 cost model and the Table 3 platform survey,
//   - an experiment harness regenerating every table and figure.
//
// # Quick start
//
//	g := repro.RandomGraph(256, 1024, repro.Uniform(8), 1)
//	spiking := repro.SpikingSSSP(g, 0, -1)   // runs on the LIF simulator
//	reference := repro.Dijkstra(g, 0)
//	// spiking.Dist == reference.Dist; spiking.SpikeTime == max distance L
//
// See examples/ for runnable programs and EXPERIMENTS.md for the
// paper-versus-measured record.
package repro

import (
	"io"

	"repro/internal/classic"
	"repro/internal/core"
	"repro/internal/crossbar"
	"repro/internal/graph"
)

// Inf is the distance value reported for unreachable vertices.
const Inf = graph.Inf

// Graph is a directed multigraph with nonnegative integer edge lengths;
// it is both the shortest-path input and the synaptic topology model.
type Graph = graph.Graph

// Edge is a directed edge with a length.
type Edge = graph.Edge

// LengthDist describes how generators draw edge lengths.
type LengthDist = graph.LengthDist

// Unit is the all-ones edge-length distribution.
var Unit = graph.Unit

// Uniform returns a length distribution uniform on [1, max]; max is the
// paper's U parameter.
func Uniform(max int64) LengthDist { return graph.Uniform(max) }

// NewGraph returns an empty graph on n vertices.
func NewGraph(n int) *Graph { return graph.New(n) }

// RandomGraph returns a connected random graph with n vertices and at
// least m edges (an arborescence from vertex 0 is embedded first).
func RandomGraph(n, m int, dist LengthDist, seed int64) *Graph {
	return graph.RandomGnm(n, m, dist, seed, true)
}

// GridGraph returns a bidirectional rows×cols lattice.
func GridGraph(rows, cols int, dist LengthDist, seed int64) *Graph {
	return graph.Grid(rows, cols, dist, seed)
}

// RingGraph returns the directed n-cycle.
func RingGraph(n int, dist LengthDist, seed int64) *Graph {
	return graph.Ring(n, dist, seed)
}

// PathGraph returns the directed n-path.
func PathGraph(n int, dist LengthDist, seed int64) *Graph {
	return graph.Path(n, dist, seed)
}

// CompleteGraph returns the complete directed graph K_n.
func CompleteGraph(n int, dist LengthDist, seed int64) *Graph {
	return graph.Complete(n, dist, seed)
}

// LayeredGraph returns a layered DAG where every source-sink path has
// exactly layers+1 edges — the workload where hop bounds bind tightly.
func LayeredGraph(layers, width int, dist LengthDist, seed int64) *Graph {
	return graph.Layered(layers, width, dist, seed)
}

// ScaleFreeGraph returns a preferential-attachment graph.
func ScaleFreeGraph(n, deg int, dist LengthDist, seed int64) *Graph {
	return graph.PreferentialAttachment(n, deg, dist, seed)
}

// ReadGraph parses the edge-list format of WriteGraph.
func ReadGraph(r io.Reader) (*Graph, error) { return graph.ReadEdgeList(r) }

// WriteGraph writes g as "n m" followed by "u v len" lines.
func WriteGraph(w io.Writer, g *Graph) error { return graph.WriteEdgeList(w, g) }

// --- Conventional baselines ---

// DijkstraResult carries distances, the shortest-path tree, and operation
// counts from a conventional Dijkstra run.
type DijkstraResult = classic.DijkstraResult

// Dijkstra runs binary-heap Dijkstra from src — the O(m + n log n)
// baseline of Table 1.
func Dijkstra(g *Graph, src int) *DijkstraResult { return classic.Dijkstra(g, src) }

// BFResult carries hop-bounded distances and relaxation counts.
type BFResult = classic.BFResult

// BellmanFordKHop computes dist_k(v) for all v in k relaxation rounds —
// the O(km) baseline of Section 6.2. earlyExit stops on convergence.
func BellmanFordKHop(g *Graph, src, k int, earlyExit bool) *BFResult {
	return classic.BellmanFordKHop(g, src, k, earlyExit)
}

// KHopPath returns an optimal at-most-k-edge path from src to dst and its
// length (nil, Inf if none exists).
func KHopPath(g *Graph, src, dst, k int) ([]int, int64) {
	return classic.KHopPath(g, src, dst, k)
}

// --- Spiking algorithms ---

// SSSPResult reports distances, latched predecessors, and the paper's
// cost measures for the spiking SSSP algorithm.
type SSSPResult = core.SSSPResult

// SpikingSSSP runs the pseudopolynomial spiking SSSP of Section 3 on the
// LIF simulator: synapse delays encode edge lengths and first-spike times
// are exactly the distances. dst >= 0 installs a terminal neuron that
// halts the run; dst = -1 computes all distances. Edge lengths must be
// >= 1. Fault-free runs cannot time out, so the wrapper swallows the
// impossible error; use core.SSSPInjected directly for fault campaigns.
func SpikingSSSP(g *Graph, src, dst int) *SSSPResult {
	r, err := core.SSSP(g, src, dst)
	if err != nil {
		panic(err)
	}
	return r
}

// TTLResult reports distances and costs of the k-hop TTL algorithm.
type TTLResult = core.TTLResult

// SpikingKHopSSSP runs the pseudopolynomial k-hop algorithm of Section
// 4.1 (TTL messages, max and decrement circuits) as an exact
// message-level simulation. Use Result.Path for hop-valid paths.
func SpikingKHopSSSP(g *Graph, src, dst, k int) *TTLResult {
	return core.KHopTTL(g, src, dst, k)
}

// PolyResult reports distances and costs of the polynomial algorithms.
type PolyResult = core.PolyResult

// SpikingKHopPoly runs the polynomial-time k-hop algorithm of Section
// 4.2 (synchronized rounds of add-length / min circuits).
func SpikingKHopPoly(g *Graph, src, k int) *PolyResult { return core.KHopPoly(g, src, k) }

// SpikingSSSPPoly runs the polynomial-time unrestricted SSSP variant
// (Theorem 4.4).
func SpikingSSSPPoly(g *Graph, src int) *PolyResult { return core.SSSPPoly(g, src) }

// ApproxResult reports the (1+o(1))-approximate distances of Section 7.
type ApproxResult = core.ApproxResult

// SpikingApproxKHop runs the Section 7 approximation: truncated spiking
// SSSP over O(log(kU log n)) rounding scales. eps <= 0 selects the
// paper's ε = 1/log2 n.
func SpikingApproxKHop(g *Graph, src, k int, eps float64) *ApproxResult {
	return core.ApproxKHop(g, src, k, eps)
}

// CompiledTTL is the k-hop algorithm compiled down to threshold gates.
type CompiledTTL = core.CompiledTTL

// CompileKHopSSSP builds the gate-level spiking network for the k-hop
// TTL algorithm: per-node max and decrement circuits, per-edge delayed
// synapse bundles. Run it with its Run method.
func CompileKHopSSSP(g *Graph, src, k int) *CompiledTTL { return core.CompileKHopTTL(g, src, k) }

// --- Crossbar ---

// Crossbar is the stacked-grid host topology H_n of Section 4.4.
type Crossbar = crossbar.Crossbar

// NewCrossbar builds H_n with all programmable (type-2) edges disabled.
func NewCrossbar(n int) *Crossbar { return crossbar.New(n) }
