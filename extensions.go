package repro

import (
	"repro/internal/congest"
	"repro/internal/core"
	"repro/internal/distance"
	"repro/internal/flow"
	"repro/internal/platform"
)

// --- Multi-destination and path-construction variants ---

// SpikingSSSPMulti runs the spiking SSSP with a destination set, halting
// when every destination has spiked (the paper's multiple-destination
// generalization).
func SpikingSSSPMulti(g *Graph, src int, dsts []int) *SSSPResult {
	return core.SSSPMulti(g, src, dsts)
}

// LatchSSSP carries distances plus gate-level latched predecessor IDs.
type LatchSSSP = core.LatchSSSP

// SpikingSSSPWithLatches runs the Section 3 path-construction mechanism
// in gates: every spike carries the sender's binary ID and every node
// latches the ID arriving with its first spike.
func SpikingSSSPWithLatches(g *Graph, src int) *LatchSSSP {
	return core.SSSPWithLatches(g, src)
}

// CompiledPoly is the §4.2 polynomial k-hop algorithm compiled to gates.
type CompiledPoly = core.CompiledPoly

// CompileKHopPolySSSP builds the gate-level network for the polynomial
// k-hop algorithm: per-edge add-length circuits, per-node valid-gated
// minimum circuits, synchronized rounds of uniform delay Θ(log kU).
func CompileKHopPolySSSP(g *Graph, src, k int) *CompiledPoly {
	return core.CompileKHopPoly(g, src, k)
}

// --- CONGEST model (Section 2.2) ---

// CongestAlgorithm is a synchronous B-bit-message distributed algorithm.
type CongestAlgorithm[S any] = congest.Algorithm[S]

// CongestResult reports rounds and message/bit accounting.
type CongestResult[S any] = congest.Result[S]

// CongestMessage is a payload with explicit bandwidth accounting.
type CongestMessage = congest.Message

// CongestBFS computes hop distances in the CONGEST model.
func CongestBFS(g *Graph, src int) ([]int64, *CongestResult[int64]) {
	return congest.BFS(g, src)
}

// CongestSSSP computes (hop-bounded) weighted shortest paths with
// distributed Bellman-Ford; pass k for dist_k or g.N() for exact SSSP.
func CongestSSSP(g *Graph, src, maxRounds int) ([]int64, *CongestResult[int64]) {
	return congest.SSSP(g, src, maxRounds)
}

// SNNToCongest transpiles a spiking network into CONGEST per the paper's
// mapping (neuron = node, time step = round, 1-bit messages, delays as
// relay paths) and simulates it for horizon steps.
func SNNToCongest(net *Network, horizon int64) *congest.FromSNNResult {
	return congest.FromSNN(net, horizon)
}

// --- Maximum flow (Section 8's tidal-flow outlook) ---

// TidalResult reports the tidal max-flow with NGA-style sweep accounting.
type TidalResult = flow.TidalResult

// TidalFlow computes the maximum s-t flow with the tidal-flow algorithm,
// whose forward/backward sweeps are level-ordered message waves — the
// paper's candidate for a neuromorphic network-flow algorithm.
func TidalFlow(g *Graph, s, t int) *TidalResult { return flow.Tidal(g, s, t) }

// DinicFlow computes the maximum s-t flow with Dinic's algorithm.
func DinicFlow(g *Graph, s, t int) int64 { return flow.Dinic(g, s, t) }

// EdmondsKarpFlow computes the maximum s-t flow with BFS augmentation.
func EdmondsKarpFlow(g *Graph, s, t int) int64 { return flow.EdmondsKarp(g, s, t) }

// --- 3D DISTANCE variant and energy model ---

// ScanInput3DMovement measures the 3D-lattice input-scan movement (the
// Ω(m^{4/3}) remark after Theorem 6.1).
func ScanInput3DMovement(words, c int, p RegisterPlacement) int64 {
	return distance.ScanInput3D(words, c, p)
}

// Scan3DLowerBound is the 3D scan bound m^{4/3}/(8·c^{1/3}).
func Scan3DLowerBound(m, c int) float64 { return distance.Scan3DLowerBound(m, c) }

// SpikeEnergyJoules estimates energy for spike events on a platform using
// its Table 3 pJ/spike figure.
func SpikeEnergyJoules(p Platform, spikeEvents int64) float64 {
	return platform.SpikeEnergyJoules(p, spikeEvents)
}

// CPUEnergyJoules estimates energy for conventional operations on the
// Table 3 reference CPU.
func CPUEnergyJoules(ops int64) float64 { return platform.CPUEnergyJoules(ops) }

// EnergyAdvantage returns the CPU/platform energy ratio for a workload
// (ops conventional operations vs spikeEvents synaptic events).
func EnergyAdvantage(p Platform, ops, spikeEvents int64) float64 {
	return platform.EnergyAdvantage(p, ops, spikeEvents)
}

// CongestApproxResult reports the CONGEST-native §7 approximation run.
type CongestApproxResult = congest.ApproxKHopResult

// CongestApproxKHop runs Nanongkai's rounding scheme natively in CONGEST
// (the algorithm Section 7 adapts to spiking networks), for comparison
// with SpikingApproxKHop.
func CongestApproxKHop(g *Graph, src, k int, eps float64) *CongestApproxResult {
	return congest.ApproxKHop(g, src, k, eps)
}
