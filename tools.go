package repro

import (
	"io"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/crossbar"
	"repro/internal/fleet"
	"repro/internal/graph"
	"repro/internal/harness"
	"repro/internal/nga"
	"repro/internal/snn"
)

// --- Interchange formats ---

// ReadDIMACS parses DIMACS .gr shortest-path input (1-based on disk).
func ReadDIMACS(r io.Reader) (*Graph, error) { return graph.ReadDIMACS(r) }

// WriteDIMACS writes g in DIMACS .gr format with an optional comment.
func WriteDIMACS(w io.Writer, g *Graph, comment string) error {
	return graph.WriteDIMACS(w, g, comment)
}

// WriteDOT renders g in Graphviz DOT syntax, optionally highlighting a
// vertex path.
func WriteDOT(w io.Writer, g *Graph, name string, highlight []int) error {
	return graph.WriteDOT(w, g, name, highlight)
}

// WriteNetlist serializes a spiking network (structure, induced spikes,
// terminals) as plain text.
func WriteNetlist(w io.Writer, n *Network) error { return snn.WriteNetlist(w, n) }

// ReadNetlist parses the WriteNetlist format into a fresh network. The
// parsed structure is statically validated (see Validate) before
// construction; malformed netlists return errors, never panic.
func ReadNetlist(r io.Reader) (*Network, error) { return snn.ReadNetlist(r) }

// --- Static verification (Definition 1-2 invariants, no simulation) ---

// Violation is one static check failure from Validate/LintNetlist.
type Violation = snn.Violation

// NetlistInfo summarizes a parsed netlist for tooling.
type NetlistInfo = snn.NetlistInfo

// Validate statically checks a network against the paper's Definition 1-2
// invariants: finite parameters, decay in [0,1], reset strictly below
// threshold, delays >= 1, in-range synapse endpoints, and reachable
// terminals. An empty result means the network is safe to simulate.
func Validate(n *Network) []Violation { return snn.Validate(n) }

// LintNetlist parses a netlist without building a network, returning its
// summary and every static violation (`spaabench validate` in API form).
func LintNetlist(r io.Reader) (NetlistInfo, []Violation, error) { return snn.LintNetlist(r) }

// LintCircuit verifies a circuit builder's network: Validate plus
// circuit-level hygiene such as isolated (dead) gates.
func LintCircuit(b *CircuitBuilder) []Violation { return circuit.Lint(b) }

// --- Crossover analysis (Table 1's advantage windows, made concrete) ---

// CrossoverK finds the smallest hop bound at which the no-movement k-hop
// row favors the spiking algorithm (the log(nU) = o(k) window).
func CrossoverK(p CostParams, kMax int64) int64 { return cost.CrossoverK(p, kMax) }

// CrossoverL finds the largest path length at which the pseudopolynomial
// SSSP row still favors the spiking algorithm.
func CrossoverL(p CostParams, lMax int64) int64 { return cost.CrossoverL(p, lMax) }

// CrossoverMovementM finds the edge count where the movement-regime
// advantage clears the given factor.
func CrossoverMovementM(p CostParams, factor float64, mMax int64) int64 {
	return cost.CrossoverMovementM(p, factor, mMax)
}

// --- Further spiking primitives and applications ---

// MatVecCircuit is a feed-forward threshold circuit computing y = A·x
// for a hardwired 0/1 matrix (depth O(log n) adder trees).
type MatVecCircuit = circuit.MatVec

// NewMatVecCircuit builds the circuit; rows[i] lists the columns j with
// A_ij = 1.
func NewMatVecCircuit(b *CircuitBuilder, rows [][]int, lambda int) *MatVecCircuit {
	return circuit.NewMatVec(b, rows, lambda)
}

// PageRank runs damped power iteration as an NGA and returns the rank
// vector and the rounds used.
func PageRank(g *Graph, damping, tol float64, maxRounds int) ([]float64, int) {
	return nga.PageRank(g, damping, tol, maxRounds)
}

// SpikingSSSPWithFaults runs the spiking SSSP with each synapse dropped
// independently with probability dropProb, returning the result and the
// surviving topology (distances are exact for the survivor).
func SpikingSSSPWithFaults(g *Graph, src int, dropProb float64, seed int64) (*SSSPResult, *Graph) {
	return core.SSSPWithFaults(g, src, dropProb, seed)
}

// SSSPRasterString renders the spiking SSSP wavefront as an ASCII spike
// raster (rows ordered by distance).
func SSSPRasterString(g *Graph, src int) string { return harness.SSSPRaster(g, src) }

// --- Crossbar ordering (the §4.4 "better embeddings" remark) ---

// CuthillMcKee computes a reverse Cuthill–McKee numbering of g, the
// bandwidth-reducing ordering used by EmbedOrdered.
func CuthillMcKee(g *Graph) []int { return crossbar.CuthillMcKee(g) }

// GraphBandwidth returns the bandwidth of g under a vertex numbering.
func GraphBandwidth(g *Graph, position []int) int64 { return crossbar.Bandwidth(g, position) }

// --- Multi-chip aggregation (Figure 7 / §2.3) ---

// ChipAssignment maps graph vertices to chips of bounded capacity.
type ChipAssignment = fleet.Assignment

// ChipTraffic reports intra- vs inter-chip spike deliveries.
type ChipTraffic = fleet.Traffic

// PartitionBFS places vertices on chips by locality-preserving BFS growth.
func PartitionBFS(g *Graph, capacity int) *ChipAssignment { return fleet.PartitionBFS(g, capacity) }

// PartitionRoundRobin is the locality-free placement baseline.
func PartitionRoundRobin(g *Graph, capacity int) *ChipAssignment {
	return fleet.PartitionRoundRobin(g, capacity)
}

// AnalyzeSSSPTraffic accounts a spiking SSSP run's deliveries under a
// chip assignment.
func AnalyzeSSSPTraffic(g *Graph, a *ChipAssignment, dist []int64) *ChipTraffic {
	return fleet.AnalyzeSSSP(g, a, dist)
}
