// Matrix powers as a neuromorphic graph algorithm (Section 2.2's NGA
// example): edges multiply by A_ij, nodes sum, R rounds compute A^R·x.
// Counting reachable walks in a citation-style graph is the demo; the
// DISTANCE-model ablation shows why the conventional dense product pays
// Θ(n³) movement while the NGA stays event-driven.
package main

import (
	"fmt"

	"repro"
)

func main() {
	// A scale-free "citation" graph; unit weights make A^r x count walks.
	g := repro.ScaleFreeGraph(24, 2, repro.Unit, 5)

	x := make([]int64, g.N())
	x[0] = 1 // indicator of vertex 0

	nga := repro.MatVecNGA(g, 16)
	fmt.Printf("graph: n=%d m=%d; NGA per-round time = T_edge(%d) + T_node(%d)\n",
		g.N(), g.M(), nga.TEdge, nga.TNode)

	for _, r := range []int{1, 2, 4} {
		res := nga.Run(x, r, nil)
		var total int64
		nonzero := 0
		for _, v := range res.Messages {
			total += v
			if v != 0 {
				nonzero++
			}
		}
		fmt.Printf("A^%d·e0: %d walks of length %d end at %d distinct vertices "+
			"(%d messages, Definition-4 time %d)\n",
			r, total, r, nonzero, res.MessagesSent, res.Time)
	}

	// DISTANCE ablation (Section 2.3): the O(n²)-operation dense product
	// becomes Θ(n³) movement with c=O(1) registers.
	fmt.Printf("\ndense matvec movement under DISTANCE (c=1):\n")
	prev := int64(0)
	for _, n := range []int{16, 32, 64} {
		mv := repro.MatVecMovement(n, 1, repro.RegistersClustered)
		growth := ""
		if prev > 0 {
			growth = fmt.Sprintf("  (x%.1f for 2x n; cubic predicts x8)", float64(mv)/float64(prev))
		}
		fmt.Printf("  n=%3d: movement %10d%s\n", n, mv, growth)
		prev = mv
	}
}
