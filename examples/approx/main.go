// Approximate k-hop shortest paths (Section 7): Nanongkai's rounding
// scheme run as truncated spiking SSSP sweeps. The payoff is the neuron
// count: O(n log(kU log n)) instead of the exact algorithm's
// O(m log(nU)) — a large saving on dense graphs.
package main

import (
	"fmt"

	"repro"
)

func main() {
	g := repro.RandomGraph(200, 3000, repro.Uniform(50), 11)
	k := 10

	apx := repro.SpikingApproxKHop(g, 0, k, 0) // eps = 1/log2 n
	exact := repro.BellmanFordKHop(g, 0, k, false)
	exactSpiking := repro.SpikingKHopPoly(g, 0, k)

	worst := 1.0
	within := 0
	for v := 0; v < g.N(); v++ {
		if exact.Dist[v] >= repro.Inf || exact.Dist[v] == 0 {
			continue
		}
		ratio := apx.Dist[v] / float64(exact.Dist[v])
		if ratio > worst {
			worst = ratio
		}
		if ratio <= 1+apx.Epsilon+1e-9 {
			within++
		}
	}

	fmt.Printf("graph: n=%d m=%d U=%d, hop bound k=%d\n", g.N(), g.M(), g.MaxLen(), k)
	fmt.Printf("epsilon = 1/log2(n) = %.4f, %d rounding scales\n", apx.Epsilon, apx.Scales)
	fmt.Printf("approximation quality: worst d~/dist_k = %.4f (guarantee <= %.4f)\n",
		worst, 1+apx.Epsilon)
	fmt.Printf("vertices within the (1+eps) bound: %d\n", within)
	fmt.Printf("\nneuron budgets (the Section 7 advantage):\n")
	fmt.Printf("  approximate: %8d neurons  (n x scales)\n", apx.NeuronCount)
	fmt.Printf("  exact §4.2:  %8d neurons  (per-edge adders + per-node min circuits)\n",
		exactSpiking.NeuronCount)
	fmt.Printf("  saving:      %.1fx fewer neurons on this dense graph\n",
		float64(exactSpiking.NeuronCount)/float64(apx.NeuronCount))
}
