// The CONGEST bridge of Section 2.2: spiking networks and distributed
// algorithms simulate each other. This example (1) runs distributed BFS
// and Bellman-Ford in the CONGEST model with bandwidth accounting, and
// (2) transpiles an actual spiking circuit into CONGEST — one node per
// neuron, one round per time step, one-bit messages, delays as relay
// paths — and shows the spike raster carried over exactly.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	g := repro.RandomGraph(64, 256, repro.Uniform(8), 4)

	hops, bfsRes := repro.CongestBFS(g, 0)
	dist, ssspRes := repro.CongestSSSP(g, 0, g.N())
	ref := repro.Dijkstra(g, 0)
	for v := 0; v < g.N(); v++ {
		if dist[v] != ref.Dist[v] {
			log.Fatalf("CONGEST SSSP mismatch at %d", v)
		}
	}

	fmt.Printf("graph: n=%d m=%d\n", g.N(), g.M())
	fmt.Printf("CONGEST BFS:  %d rounds, %d messages, <=%d bits each (hop radius %d)\n",
		bfsRes.Rounds, bfsRes.MessagesSent, bfsRes.MaxMessageBits, maxFinite(hops))
	fmt.Printf("CONGEST SSSP: %d rounds, %d messages, <=%d bits each — matches Dijkstra\n",
		ssspRes.Rounds, ssspRes.MessagesSent, ssspRes.MaxMessageBits)

	// Transpile a real spiking circuit: the Figure 1A delay gadget.
	b := repro.NewCircuitBuilder(true)
	gadget := repro.NewDelayGadget(b, 12)
	b.Net.InduceSpike(gadget.In, 0)
	tr := repro.SNNToCongest(b.Net, 20)

	fmt.Printf("\nSNN -> CONGEST transpilation of the delay-12 gadget:\n")
	fmt.Printf("  %d neurons became %d CONGEST nodes (%d delay relays)\n",
		b.Net.N(), tr.Nodes, tr.Relays)
	fmt.Printf("  all messages are %d bit wide (the paper's single-bit mapping)\n",
		tr.Stats.MaxMessageBits)
	for t := int64(0); t <= 14; t++ {
		for _, v := range tr.Raster[t] {
			if v == gadget.Out {
				fmt.Printf("  gadget output fired at CONGEST round %d (programmed delay 12)\n", t)
			}
		}
	}
}

func maxFinite(xs []int64) int64 {
	var m int64
	for _, x := range xs {
		if x < repro.Inf && x > m {
			m = x
		}
	}
	return m
}
