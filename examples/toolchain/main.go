// Toolchain demo: the production workflow around the simulator. Build a
// spiking circuit, serialize it as a netlist (the artifact a neuromorphic
// toolchain would load onto hardware — the O(m)-time "loading into the
// SNA" the paper charges), reload it into a fresh machine, execute, and
// inspect the spike raster and activity statistics.
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro"
)

func main() {
	// Build: a delay-12 gadget (Figure 1A) feeding a memory latch
	// (Figure 1B): "remember that the delayed signal arrived".
	b := repro.NewCircuitBuilder(true)
	gadget := repro.NewDelayGadget(b, 12)
	latch := repro.NewLatch(b)
	b.Net.Connect(gadget.Out, latch.Set, 1, 1)
	b.Net.InduceSpike(gadget.In, 0)
	b.Net.InduceSpike(latch.Recall, 20)

	// Serialize -> ship -> reload.
	var netlist bytes.Buffer
	if err := repro.WriteNetlist(&netlist, b.Net); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("netlist: %d bytes for %d neurons / %d synapses\n",
		netlist.Len(), b.Net.N(), b.Net.Synapses())

	machine, err := repro.ReadNetlist(&netlist)
	if err != nil {
		log.Fatal(err)
	}

	// Execute on the reloaded machine.
	machine.Run(25)
	fmt.Printf("gadget output fired at t=%d (programmed delay 12)\n",
		machine.FirstSpike(gadget.Out))
	fmt.Printf("latch recalled the stored bit at t=%d (recall issued at 20)\n",
		machine.FirstSpike(latch.Out))

	// Inspect: activity statistics and the raster.
	stats := machine.TotalStats()
	fmt.Printf("activity: %d spikes, %d synaptic events, %d active neurons\n",
		stats.Spikes, stats.Deliveries, machine.ActiveNeurons())
	step, count := machine.BusiestStep()
	fmt.Printf("busiest step: t=%d with %d simultaneous spikes\n", step, count)

	fmt.Println("\nspike raster (gadget input, generator loop, output; latch M and out):")
	fmt.Print(machine.RenderRaster(
		[]int{gadget.In, gadget.Out, latch.M, latch.Out},
		[]string{"gadget.in", "gadget.out", "latch.M", "latch.out"},
		0, 23))
}
