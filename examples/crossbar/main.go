// Crossbar embedding: host an arbitrary graph on the stacked-grid
// topology H_n of Section 4.4 — the fixed hardware network a neuromorphic
// chip actually provides — and run the spiking SSSP on the host,
// measuring the embedding cost. Then re-program the same crossbar with a
// second graph (the O(m) embed/unembed sequence).
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	n := 16
	cb := repro.NewCrossbar(n)
	fmt.Printf("crossbar H_%d: %d host neurons, %d host synapses "+
		"(fixed hardware; only drop-edge delays are programmable)\n",
		n, cb.G.N(), cb.G.M())

	for trial, seed := range []int64{1, 2} {
		g := repro.RandomGraph(n, 4*n, repro.Uniform(6), seed)
		scale, err := cb.Embed(g)
		if err != nil {
			log.Fatal(err)
		}
		run := cb.SSSP(0)
		ref := repro.Dijkstra(g, 0)
		for v := 0; v < g.N(); v++ {
			if run.Dist[v] != ref.Dist[v] {
				log.Fatalf("trial %d: dist[%d] = %d, want %d", trial, v, run.Dist[v], ref.Dist[v])
			}
		}
		var l int64
		for _, d := range ref.Dist {
			if d < repro.Inf && d > l {
				l = d
			}
		}
		fmt.Printf("\ngraph %d (n=%d m=%d): embedded at length scale %d\n", trial+1, g.N(), g.M(), scale)
		fmt.Printf("  all %d crossbar distances match direct Dijkstra\n", g.N())
		fmt.Printf("  direct spiking time would be L=%d; host time is %d = scale x L\n", l, run.HostSpikeTime)
		fmt.Printf("  measured embedding cost factor: %dx (paper: O(n) worst case)\n", run.HostSpikeTime/l)
		cb.Unembed()
	}
	fmt.Printf("\ntotal programmable-delay writes over both embeddings: %d (O(m) each)\n", cb.Reprogrammed)
}
