// Quickstart: build a random road-like graph, compute single-source
// shortest paths with the spiking (delay-coded Dijkstra) algorithm of
// Section 3 running on the LIF simulator, and verify against conventional
// Dijkstra.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// A connected random digraph: 256 intersections, ~1024 road segments
	// with lengths 1..8 (the paper's U parameter).
	g := repro.RandomGraph(256, 1024, repro.Uniform(8), 42)

	// Spiking SSSP: one neuron per vertex, synapse delays = edge lengths;
	// the spike wavefront IS the priority queue.
	spiking := repro.SpikingSSSP(g, 0, -1)

	// Conventional reference.
	ref := repro.Dijkstra(g, 0)

	for v := 0; v < g.N(); v++ {
		if spiking.Dist[v] != ref.Dist[v] {
			log.Fatalf("mismatch at %d: spiking %d vs dijkstra %d",
				v, spiking.Dist[v], ref.Dist[v])
		}
	}

	fmt.Printf("graph: n=%d m=%d U=%d\n", g.N(), g.M(), g.MaxLen())
	fmt.Printf("spiking SSSP: all %d distances match Dijkstra\n", g.N())
	fmt.Printf("  simulated spiking time L = %d steps (longest shortest path)\n", spiking.SpikeTime)
	fmt.Printf("  network: %d neurons, %d synapses\n", spiking.Neurons, spiking.Synapses)
	fmt.Printf("  activity: %d spikes, %d synaptic events (fire-once per vertex)\n",
		spiking.Stats.Spikes, spiking.Stats.Deliveries)
	fmt.Printf("conventional Dijkstra: %d heap operations\n", ref.Ops)

	// Path recovery via the latched first-spike predecessors (§3).
	dst := 100
	path := spiking.Path(dst)
	fmt.Printf("shortest path 0 -> %d (len %d): %v\n", dst, spiking.Dist[dst], path)
}
