// Tidal flow (the paper's Section 8 outlook): a maximum-flow algorithm
// whose iterations are forward/backward message sweeps over the level
// graph — the structure that makes it a candidate neuromorphic network-
// flow algorithm. Solves a layered supply network and cross-checks
// against Dinic and Edmonds-Karp.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// A layered supply network: source -> 3 plants -> 4 depots -> sink.
	g := repro.LayeredGraph(2, 4, repro.Uniform(15), 9)
	s, t := 0, g.N()-1

	tidal := repro.TidalFlow(g, s, t)
	dinic := repro.DinicFlow(g, s, t)
	ek := repro.EdmondsKarpFlow(g, s, t)
	if tidal.Value != dinic || tidal.Value != ek {
		log.Fatalf("disagreement: tidal %d, dinic %d, edmonds-karp %d", tidal.Value, dinic, ek)
	}

	fmt.Printf("network: n=%d m=%d\n", g.N(), g.M())
	fmt.Printf("maximum flow: %d (tidal == dinic == edmonds-karp)\n", tidal.Value)
	fmt.Printf("tidal execution: %d level-graph phases, %d tide cycles\n",
		tidal.Phases, tidal.Cycles)
	fmt.Printf("NGA-style cost of the sweeps: %d rounds, %d messages\n",
		tidal.SweepRounds, tidal.SweepMessages)
	fmt.Printf("(each cycle = flood + ebb + tide: three level-ordered message waves,\n")
	fmt.Printf(" which is why Section 8 nominates tidal flow for neuromorphic systems)\n")

	// Verify conservation explicitly, edge by edge.
	out := make([]int64, g.N())
	for i, e := range g.Edges() {
		out[e.From] += tidal.EdgeFlow[i]
		out[e.To] -= tidal.EdgeFlow[i]
	}
	fmt.Printf("conservation check: source ships %d, sink receives %d\n", out[s], -out[t])
}
