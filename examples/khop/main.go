// k-hop shortest paths on a layered logistics network: flights with at
// most k legs. Runs all three of the paper's k-hop machines — the
// pseudopolynomial TTL algorithm (Section 4.1), the polynomial-time
// algorithm (Section 4.2), and the TTL algorithm compiled all the way
// down to threshold gates — and compares them with k-round Bellman-Ford.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// A layered route network: every itinerary from hub 0 to the sink has
	// exactly layers+1 legs, so the hop budget binds hard.
	layers, width := 6, 8
	g := repro.LayeredGraph(layers, width, repro.Uniform(20), 7)
	// Add a direct long-haul edge: 1 leg, expensive.
	src, sink := 0, g.N()-1
	g.AddEdge(src, sink, 120)

	fmt.Printf("network: n=%d m=%d, itineraries need %d legs (or 1 expensive leg)\n",
		g.N(), g.M(), layers+1)

	for _, k := range []int{1, layers, layers + 1} {
		bf := repro.BellmanFordKHop(g, src, k, false)
		ttl := repro.SpikingKHopSSSP(g, src, -1, k)
		poly := repro.SpikingKHopPoly(g, src, k)
		for v := 0; v < g.N(); v++ {
			if ttl.Dist[v] != bf.Dist[v] || poly.Dist[v] != bf.Dist[v] {
				log.Fatalf("k=%d mismatch at %d: ttl %d poly %d bf %d",
					k, v, ttl.Dist[v], poly.Dist[v], bf.Dist[v])
			}
		}
		fmt.Printf("\nk=%d: cheapest %d-leg route costs %s (all three algorithms agree)\n",
			k, k, dist(bf.Dist[sink]))
		fmt.Printf("  TTL  (§4.1): λ=%d-bit TTLs, %d broadcasts, %d circuit neurons\n",
			ttl.Lambda, ttl.Broadcasts, ttl.NeuronCount)
		fmt.Printf("  poly (§4.2): λ=%d-bit lengths, %d rounds × %d steps, %d circuit neurons\n",
			poly.Lambda, poly.Rounds, poly.RoundTime, poly.NeuronCount)
		fmt.Printf("  Bellman-Ford: %d relaxations\n", bf.Relaxations)
		if p := ttl.Path(sink); p != nil {
			fmt.Printf("  itinerary (%d legs): %v\n", len(p)-1, p)
		}
	}

	// The full vertical stack on a small subinstance: the TTL algorithm
	// compiled to threshold gates and executed spike by spike.
	small := repro.NewGraph(5)
	small.AddEdge(0, 1, 2)
	small.AddEdge(1, 2, 2)
	small.AddEdge(2, 4, 2)
	small.AddEdge(0, 3, 4)
	small.AddEdge(3, 4, 7)
	fmt.Printf("\ngate-level compiled TTL on a 5-vertex instance:\n")
	for k := 1; k <= 3; k++ {
		ct := repro.CompileKHopSSSP(small, 0, k)
		d, stats := ct.Run()
		want := repro.BellmanFordKHop(small, 0, k, false)
		fmt.Printf("  k=%d: dist(4)=%s (Bellman-Ford %s), %d gate neurons, %d spikes\n",
			k, dist(d[4]), dist(want.Dist[4]), ct.Net.N(), stats.Spikes)
	}
}

func dist(d int64) string {
	if d >= repro.Inf {
		return "unreachable"
	}
	return fmt.Sprintf("%d", d)
}
