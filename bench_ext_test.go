package repro

// Benchmarks for the extension modules: the §2.2 CONGEST bridge, the §8
// tidal-flow outlook, the 3D DISTANCE remark, the gate-level compiled
// polynomial machine, and the latch-based path construction.

import (
	"fmt"
	"testing"
)

func BenchmarkCongestSSSP(b *testing.B) {
	for _, n := range []int{64, 256} {
		g := benchGraph(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var rounds int
			for i := 0; i < b.N; i++ {
				_, res := CongestSSSP(g, 0, g.N())
				rounds = res.Rounds
			}
			b.ReportMetric(float64(rounds), "rounds")
		})
	}
}

func BenchmarkSNNToCongest(b *testing.B) {
	g := RandomGraph(32, 128, Uniform(4), 5)
	for i := 0; i < b.N; i++ {
		spiking := NewNetwork(NetworkConfig{})
		relays := make([]int, g.N())
		for v := 0; v < g.N(); v++ {
			relays[v] = spiking.AddNeuron(IntegratorNeuron(1))
		}
		for v := 0; v < g.N(); v++ {
			spiking.Connect(relays[v], relays[v], -float64(g.InDeg(v)+1), 1)
		}
		for _, e := range g.Edges() {
			spiking.Connect(relays[e.From], relays[e.To], 1, e.Len)
		}
		spiking.InduceSpike(relays[0], 0)
		r := SNNToCongest(spiking, 40)
		if r.Stats.MaxMessageBits > 1 {
			b.Fatal("message too wide")
		}
	}
}

func BenchmarkTidalFlow(b *testing.B) {
	for _, width := range []int{4, 8, 16} {
		g := LayeredGraph(4, width, Uniform(20), 7)
		s, t := 0, g.N()-1
		b.Run(fmt.Sprintf("layers=4/width=%d", width), func(b *testing.B) {
			var cycles int
			for i := 0; i < b.N; i++ {
				r := TidalFlow(g, s, t)
				cycles = r.Cycles
			}
			b.ReportMetric(float64(cycles), "tide-cycles")
		})
	}
}

func BenchmarkDinicFlow(b *testing.B) {
	g := LayeredGraph(4, 16, Uniform(20), 7)
	s, t := 0, g.N()-1
	for i := 0; i < b.N; i++ {
		if DinicFlow(g, s, t) == 0 {
			b.Fatal("no flow")
		}
	}
}

func BenchmarkScan3D(b *testing.B) {
	for _, m := range []int{4096, 32768} {
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			var cost int64
			for i := 0; i < b.N; i++ {
				cost = ScanInput3DMovement(m, 1, RegistersSpread)
			}
			b.ReportMetric(float64(cost), "l1-movement")
			b.ReportMetric(float64(cost)/Scan3DLowerBound(m, 1), "vs-bound")
		})
	}
}

func BenchmarkCompiledPoly(b *testing.B) {
	g := RandomGraph(8, 20, Uniform(4), 9)
	for _, k := range []int{2, 4} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			var spikes int64
			for i := 0; i < b.N; i++ {
				cp := CompileKHopPolySSSP(g, 0, k)
				_, stats := cp.Run()
				spikes = stats.Spikes
			}
			b.ReportMetric(float64(spikes), "spikes")
		})
	}
}

func BenchmarkLatchPathSSSP(b *testing.B) {
	g := RandomGraph(128, 512, Uniform(40), 11)
	for i := 0; i < b.N; i++ {
		r := SpikingSSSPWithLatches(g, 0)
		if r.Dist[1] < 0 {
			b.Fatal("impossible")
		}
	}
}

func BenchmarkSSSPMulti(b *testing.B) {
	g := benchGraph(512)
	dsts := []int{10, 100, 400}
	for i := 0; i < b.N; i++ {
		r := SpikingSSSPMulti(g, 0, dsts)
		if r.SpikeTime == 0 {
			b.Fatal("no halt")
		}
	}
}

func BenchmarkEnergyModel(b *testing.B) {
	g := benchGraph(256)
	var loihi Platform
	for _, p := range Table3() {
		if p.Name == "Loihi" {
			loihi = p
		}
	}
	var adv float64
	for i := 0; i < b.N; i++ {
		spiking := SpikingSSSP(g, 0, -1)
		ref := Dijkstra(g, 0)
		adv = EnergyAdvantage(loihi, ref.Ops, spiking.Stats.Deliveries)
	}
	b.ReportMetric(adv, "energy-advantage")
}
