package repro

import (
	"bytes"
	"strings"
	"testing"
)

func TestFacadeDIMACS(t *testing.T) {
	g := RandomGraph(15, 60, Uniform(7), 4)
	var buf bytes.Buffer
	if err := WriteDIMACS(&buf, g, "facade"); err != nil {
		t.Fatal(err)
	}
	h, err := ReadDIMACS(&buf)
	if err != nil || h.N() != g.N() || h.M() != g.M() {
		t.Fatalf("round trip: %v", err)
	}
}

func TestFacadeDOTAndNetlist(t *testing.T) {
	g := PathGraph(4, Unit, 0)
	var dot bytes.Buffer
	if err := WriteDOT(&dot, g, "p", nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dot.String(), "digraph") {
		t.Fatal("DOT output missing header")
	}
	net := NewNetwork(NetworkConfig{})
	a := net.AddNeuron(GateNeuron(1))
	b := net.AddNeuron(GateNeuron(1))
	net.Connect(a, b, 1, 2)
	net.InduceSpike(a, 0)
	var nl bytes.Buffer
	if err := WriteNetlist(&nl, net); err != nil {
		t.Fatal(err)
	}
	reread, err := ReadNetlist(&nl)
	if err != nil {
		t.Fatal(err)
	}
	reread.Run(5)
	if reread.FirstSpike(b) != 2 {
		t.Fatalf("netlist behaviour lost: %d", reread.FirstSpike(b))
	}
}

func TestFacadeCrossover(t *testing.T) {
	p := CostParams{N: 256, M: 1024, K: 1, L: 10, U: 4, Alpha: 4, C: 1}
	if k := CrossoverK(p, 1<<20); k == 0 {
		t.Fatal("no k crossover")
	}
	sparse := CostParams{N: 1024, M: 2048, K: 4, L: 1, U: 4, Alpha: 4, C: 1}
	if l := CrossoverL(sparse, 1<<30); l == 0 {
		t.Fatal("no L window")
	}
	if m := CrossoverMovementM(CostParams{N: 64, M: 2, K: 4, L: 16, U: 4, Alpha: 4, C: 1}, 10, 1<<40); m == 0 {
		t.Fatal("no movement crossover")
	}
}

func TestFacadeMatVecCircuit(t *testing.T) {
	b := NewCircuitBuilder(true)
	m := NewMatVecCircuit(b, [][]int{{0, 1}, {1}}, 4)
	y := m.Compute(b, []uint64{6, 7}, 0)
	if y[0] != 13 || y[1] != 7 {
		t.Fatalf("y = %v", y)
	}
}

func TestFacadePageRank(t *testing.T) {
	g := ScaleFreeGraph(20, 2, Unit, 3)
	pr, rounds := PageRank(g, 0.85, 1e-9, 300)
	if rounds == 0 {
		t.Fatal("no rounds")
	}
	var sum float64
	for _, p := range pr {
		sum += p
	}
	if sum < 0.99 || sum > 1.01 {
		t.Fatalf("sum %v", sum)
	}
}

func TestFacadeFaults(t *testing.T) {
	g := RandomGraph(20, 80, Uniform(5), 6)
	r, survived := SpikingSSSPWithFaults(g, 0, 0.3, 9)
	want := Dijkstra(survived, 0)
	for v := 0; v < g.N(); v++ {
		if r.Dist[v] != want.Dist[v] {
			t.Fatalf("faulty dist[%d] mismatch", v)
		}
	}
}

func TestFacadeRaster(t *testing.T) {
	g := PathGraph(4, Unit, 0)
	out := SSSPRasterString(g, 0)
	if !strings.Contains(out, "wavefront") || !strings.Contains(out, "|") {
		t.Fatalf("raster:\n%s", out)
	}
}

func TestFacadeOrderedEmbedding(t *testing.T) {
	n := 16
	g := PathGraph(n, Unit, 2)
	pos := CuthillMcKee(g)
	if GraphBandwidth(g, pos) != 1 {
		t.Fatalf("path RCM bandwidth %d", GraphBandwidth(g, pos))
	}
	cb := NewCrossbar(n)
	scale, err := cb.EmbedOrdered(g, pos)
	if err != nil {
		t.Fatal(err)
	}
	if scale != 4 {
		t.Fatalf("ordered scale %d", scale)
	}
	got := cb.SSSP(0)
	want := Dijkstra(g, 0)
	for v := 0; v < n; v++ {
		if got.Dist[v] != want.Dist[v] {
			t.Fatalf("dist[%d] mismatch", v)
		}
	}
}

func TestFacadeFleet(t *testing.T) {
	g := GridGraph(8, 8, Unit, 0)
	bfs := PartitionBFS(g, 16)
	rr := PartitionRoundRobin(g, 16)
	dist := SpikingSSSP(g, 0, -1).Dist
	tb := AnalyzeSSSPTraffic(g, bfs, dist)
	tr := AnalyzeSSSPTraffic(g, rr, dist)
	if tb.InterChip >= tr.InterChip {
		t.Fatalf("BFS placement no better: %d vs %d", tb.InterChip, tr.InterChip)
	}
	var loihi Platform
	for _, p := range Table3() {
		if p.Name == "Loihi" {
			loihi = p
		}
	}
	if tb.EnergyJoules(loihi.PicoJoulePerSpike, 100) <= 0 {
		t.Fatal("zero energy")
	}
}

func TestFacadeRippleAdder(t *testing.T) {
	b := NewCircuitBuilder(true)
	a := NewAdderRipple(b, 8)
	if got := a.Compute(b, 100, 55, 0); got != 155 {
		t.Fatalf("ripple facade = %d", got)
	}
}
